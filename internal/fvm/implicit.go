package fvm

import (
	"math"

	"cataero/internal/numerics"
)

// CFLRamp is the implicit integrator's CFL schedule: start low while the
// transient establishes the shock, grow geometrically as the solution
// settles, and cap at the relaxation limit. A diverging line halves the
// ramp (never below Start) before it resumes growing.
type CFLRamp struct {
	// Start is the initial CFL number (default 2).
	Start float64
	// Growth is the geometric per-step growth factor (default 1.25).
	// Values below 1 are floored at 1 — the ramp never shrinks the CFL on
	// its own; 1 holds it constant at Start.
	Growth float64
	// Max caps the ramp (default 200; floored at Start).
	Max float64
}

// DefaultCFLRamp is the schedule used for zero-valued CFLRamp fields.
var DefaultCFLRamp = CFLRamp{Start: 2, Growth: 1.25, Max: 200}

// withDefaults fills zero-valued fields from DefaultCFLRamp — explicitly
// set values are respected: Growth 1 holds the CFL constant, and a Max
// below Start is floored at Start (not replaced).
func (r CFLRamp) withDefaults() CFLRamp {
	if r.Start <= 0 {
		r.Start = DefaultCFLRamp.Start
	}
	if r.Growth == 0 {
		r.Growth = DefaultCFLRamp.Growth
	} else if r.Growth < 1 {
		r.Growth = 1
	}
	if r.Max == 0 {
		r.Max = DefaultCFLRamp.Max
	}
	if r.Max < r.Start {
		r.Max = r.Start
	}
	return r
}

// --- implicit: DPLR-style line-implicit relaxation along wall-normal lines ---
//
// The explicit scheme is CFL-bound by the finest wall-normal spacing, which
// on clustered viscous grids means thousands of steps per solve. The
// implicit integrator removes exactly that restriction: per i-station it
// solves a block-tridiagonal 4×4 system along the wall-normal j-line,
// linearizing the j-face fluxes to first order (exact convective Jacobian of
// the physical flux plus spectral-radius dissipation — the Jacobian-free
// lower-order LHS of the DPLR/US3D lineage) and folding the i-direction and
// boundary couplings into the diagonal by their spectral radii
// (point-implicit, unconditionally stable in the scalar model). The RHS is
// the full (optionally MUSCL) residual, so the converged state is identical
// to the explicit scheme's.

type implicitIntegrator struct{}

func (implicitIntegrator) Name() string { return TimeSteppingImplicit }

func (implicitIntegrator) NewStepper(s *Solver) (Stepper, error) {
	st := &implicitStepper{
		s:    s,
		ramp: s.Opts.CFLRamp.withDefaults(),
		ws:   make([]*implicitLineWS, s.pool.chunkCount(s.ni)),
	}
	st.cfl = st.ramp.Start
	vs := s.pInf.A + math.Hypot(s.pInf.U, s.pInf.V)
	st.scl = [4]float64{1, vs, vs, vs * vs}
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			st.rat[r*4+c] = st.scl[c] / st.scl[r]
		}
	}
	nj := s.nj
	for i := range st.ws {
		st.ws[i] = &implicitLineWS{
			A:  make([]float64, nj*16),
			B:  make([]float64, nj*16),
			C:  make([]float64, nj*16),
			D:  make([]float64, nj*4),
			bt: numerics.NewBlockTridiagWorkspace(4),
		}
	}
	st.sweep = st.lineRange
	return st, nil
}

// implicitLineWS is the per-worker-chunk workspace of the line sweep: one
// block-tridiagonal system (reused by every line the chunk owns), the
// factorization scratch, Jacobian temporaries and the chunk's partial
// results. Allocated once per solver so stepping is allocation-free.
type implicitLineWS struct {
	A, B, C []float64 // nj 4×4 blocks, flat row-major
	D       []float64 // nj right-hand 4-vectors / solution
	jm, jp  [16]float64
	bt      *numerics.BlockTridiagWorkspace
	sum     float64 // chunk's share of the squared density residual
	fell    int     // lines that fell back to the explicit stage this step
}

type implicitStepper struct {
	s     *Solver
	ramp  CFLRamp
	cfl   float64
	ws    []*implicitLineWS
	sweep func(ci, lo, hi int)
	// scl/rat equilibrate the line systems before factorization: conserved
	// variables mix mass, momentum and energy scales spanning many orders of
	// magnitude, and the block elimination loses the solution to
	// cancellation without row/column scaling. scl is the per-component
	// variable scale (1, v, v, v²); rat[r*4+c] = scl[c]/scl[r] maps a block
	// entry into the scaled system.
	scl [4]float64
	rat [16]float64
	// fallbacks counts diverged-line explicit fallbacks over the whole run
	// (observable by tests and divergence diagnostics).
	fallbacks int
	// best/stall/cap gate the ramp on convergence: the CFL grows only while
	// the residual keeps making new lows, and is halved when it limit-cycles
	// (stallWindow steps without a new low). The plateau level of the
	// limiter/defect-correction cycle scales with the CFL, so after a stall
	// the dynamic cap keeps the ramp from climbing straight back to the
	// level that stalled; sustained descent relaxes the cap again.
	best  float64
	stall int
	cap   float64
	lows  int
}

// stallWindow is how many steps without a new residual low the ramp
// tolerates before halving the CFL.
const stallWindow = 12

// carryCFL seeds the ramp from another solver's integrator state at a
// multilevel transition: a coarser level that has already relaxed the
// transient proves a high CFL is safe, so the finer level starts there
// instead of re-climbing from Start. The convergence bookkeeping re-latches
// fresh (the levels' residual scales differ).
func (st *implicitStepper) carryCFL(from Stepper) {
	src, ok := from.(*implicitStepper)
	if !ok {
		return
	}
	cfl := src.cfl
	if cfl > st.ramp.Max {
		cfl = st.ramp.Max
	}
	if cfl > st.cfl {
		st.cfl = cfl
	}
	st.best, st.stall, st.lows = 0, 0, 0
	st.cap = st.ramp.Max
}

// resetRamp re-latches the convergence bookkeeping after a grid change
// (mid-march refit): the transferred state makes the retained residual lows
// meaningless, and the refit transient should not read as a limit-cycle
// stall.
func (st *implicitStepper) resetRamp() {
	st.best, st.stall, st.lows = 0, 0, 0
	st.cap = st.ramp.Max
}

// Step advances one line-implicit time step: full residual evaluation at the
// ramped CFL, one block-tridiagonal solve per wall-normal line (parallel
// across lines on the worker pool), an explicit fallback on any line whose
// update leaves the physical state space, and a CFL ramp update. Returns the
// RMS density residual of the evaluated RHS.
//
//cataero:hotpath
func (st *implicitStepper) Step() float64 {
	s := st.s
	s.cfl = st.cfl
	s.updatePrimitives()
	s.timeSteps()
	s.computeResidual()
	s.pool.sweep(s.ni, &s.sweepWG, st.sweep)
	sum := 0.0
	fell := 0
	for _, w := range st.ws {
		sum += w.sum
		fell += w.fell
	}
	st.fallbacks += fell
	r := math.Sqrt(sum / float64(s.ni*s.nj))
	if st.cap == 0 {
		st.cap = st.ramp.Max
	}
	switch {
	case fell > 0:
		// A diverging line means the linearization overstepped: back the
		// ramp off (and hold it there) before growing again.
		st.cfl = math.Max(st.ramp.Start, 0.5*st.cfl)
		st.cap = math.Max(st.ramp.Start, st.cfl)
		st.stall, st.lows = 0, 0
	case st.best == 0 || r < 0.98*st.best:
		if st.lows++; st.lows >= 2*stallWindow && st.cap < st.ramp.Max {
			// Sustained descent: let the cap recover.
			st.cap = math.Min(st.ramp.Max, 1.5*st.cap)
			st.lows = 0
		}
		st.cfl = math.Min(st.cap, st.cfl*st.ramp.Growth)
		st.stall = 0
	default:
		st.lows = 0
		if st.stall++; st.stall >= stallWindow {
			st.cfl = math.Max(st.ramp.Start, 0.5*st.cfl)
			st.cap = math.Max(st.ramp.Start, st.cfl)
			st.stall = 0
		}
	}
	if r > 0 && (st.best == 0 || r < st.best) {
		st.best = r
	}
	return r
}

// lineRange assembles and solves the wall-normal systems for i-lines
// [lo, hi) — one sweep chunk, using that chunk's private workspace.
//
//cataero:hotpath
func (st *implicitStepper) lineRange(ci, lo, hi int) {
	w := st.ws[ci]
	w.sum, w.fell = 0, 0
	for i := lo; i < hi; i++ {
		st.solveLine(i, w)
	}
}

// addScaledIdent adds c*I to the 4×4 block at dst.
func addScaledIdent(dst []float64, c float64) {
	dst[0] += c
	dst[5] += c
	dst[10] += c
	dst[15] += c
}

// addScaled adds c*src to the 4×4 block at dst.
func addScaled(dst, src []float64, c float64) {
	for k := 0; k < 16; k++ {
		dst[k] += c * src[k]
	}
}

// mirrorCols right-multiplies the 4×4 block by the conserved-variable
// reflection matrix M = diag(1, I − 2nnᵀ, 1): the Jacobian of the mirrored
// ghost state with respect to the interior state.
func mirrorCols(x []float64, nx, ny float64) {
	for r := 0; r < 4; r++ {
		dot := x[r*4+1]*nx + x[r*4+2]*ny
		x[r*4+1] -= 2 * dot * nx
		x[r*4+2] -= 2 * dot * ny
	}
}

// jacN writes scale times the inviscid flux Jacobian ∂F_n/∂U at state q
// into dst (4×4 row-major), using the cell's effective gamma
// (rho a²/p) so the linearization tracks a general equation of state.
func jacN(dst []float64, q Prim, nx, ny, scale float64) {
	g := q.A * q.A * q.Rho / q.P
	if g < 1.05 {
		g = 1.05
	} else if g > 1.8 {
		g = 1.8
	}
	g1 := g - 1
	u, v := q.U, q.V
	un := u*nx + v*ny
	q2 := u*u + v*v
	phi := 0.5 * g1 * q2
	H := q.E + q.P/q.Rho + 0.5*q2
	dst[0], dst[1], dst[2], dst[3] = 0, scale*nx, scale*ny, 0
	dst[4] = scale * (phi*nx - u*un)
	dst[5] = scale * (un + (2-g)*u*nx)
	dst[6] = scale * (u*ny - g1*v*nx)
	dst[7] = scale * (g1 * nx)
	dst[8] = scale * (phi*ny - v*un)
	dst[9] = scale * (v*nx - g1*u*ny)
	dst[10] = scale * (un + (2-g)*v*ny)
	dst[11] = scale * (g1 * ny)
	dst[12] = scale * ((phi - H) * un)
	dst[13] = scale * (H*nx - g1*u*un)
	dst[14] = scale * (H*ny - g1*v*un)
	dst[15] = scale * (g * un)
}

// solveLine assembles and solves the block-tridiagonal system of i-line i
// and applies the update, falling back to a one-stage explicit update at
// the explicit CFL when the line solve diverges (singular system, or an
// update that leaves the physical state space).
func (st *implicitStepper) solveLine(i int, w *implicitLineWS) {
	s := st.s
	nj := s.nj
	met := s.met
	st.assembleLine(i, w)
	st.equilibrate(w)
	ok := w.bt.SolveFlat(w.A, w.B, w.C, w.D, nj) == nil
	if ok {
		for j := 0; j < nj; j++ {
			for c := 0; c < 4; c++ {
				w.D[j*4+c] *= st.scl[c]
			}
		}
		ok = st.lineUpdateValid(i, w)
	}
	if ok {
		for j := 0; j < nj; j++ {
			k := s.idx(i, j)
			for c := 0; c < 4; c++ {
				s.U[k][c] += w.D[j*4+c]
			}
		}
	} else {
		st.fallbackLine(i)
		w.fell++
	}
	for j := 0; j < nj; j++ {
		k := s.idx(i, j)
		r := s.res[k][0] / met.Vol[k]
		w.sum += r * r
	}
}

// assembleLine fills the workspace with i-line i's block-tridiagonal system
// (V/Δt I + ∂res/∂U)ΔU = −res, with the j-direction linearized to first
// order and the i-direction folded into the diagonal by spectral radius.
func (st *implicitStepper) assembleLine(i int, w *implicitLineWS) {
	s := st.s
	nj := s.nj
	met := s.met
	for k := range w.A {
		w.A[k] = 0
		w.B[k] = 0
		w.C[k] = 0
	}
	// Cell terms: V/Δt on the diagonal, the i-direction (off-line) face
	// couplings folded in by their spectral radii, and the RHS.
	for j := 0; j < nj; j++ {
		k := s.idx(i, j)
		q := s.prim[k]
		Bj := w.B[j*16 : (j+1)*16]
		addScaledIdent(Bj, met.Vol[k]/s.dt[k])
		fw := 3 * (i*nj + j)
		fe := 3 * ((i+1)*nj + j)
		lamW := (math.Abs(q.U*met.FaceIN[fw]+q.V*met.FaceIN[fw+1]) + q.A) * met.FaceIN[fw+2]
		lamE := (math.Abs(q.U*met.FaceIN[fe]+q.V*met.FaceIN[fe+1]) + q.A) * met.FaceIN[fe+2]
		addScaledIdent(Bj, 0.5*(lamW+lamE))
		for c := 0; c < 4; c++ {
			w.D[j*4+c] = -s.res[k][c]
		}
	}
	// J-direction faces: first-order Jacobian + spectral-radius dissipation
	// for the interior, spectral-radius (plus wall conduction) diagonal
	// augmentation at the boundaries.
	for f := 0; f <= nj; f++ {
		fk := 3 * (i*(nj+1) + f)
		nx, ny, area := met.FaceJN[fk], met.FaceJN[fk+1], met.FaceJN[fk+2]
		if area == 0 {
			continue
		}
		switch {
		case f == 0:
			// Wall: the flux is Flux(mirror(q), q). Linearize both arguments
			// — the ghost through the reflection matrix — so the convective
			// Jacobian block cancels against the f=1 face's instead of
			// leaving a large uncancelled (non-normal) block on the wall row.
			q := s.prim[s.idx(i, 0)]
			lam := (math.Abs(q.U*nx+q.V*ny) + q.A) * area
			B0 := w.B[0:16]
			// res[0] -= F_w, so subtract dF_w/dU0 =
			// ½(S·A(g)+λI)·M + ½(S·A(q)−λI) with g = mirror(q).
			jacN(w.jm[:], mirror(q, nx, ny), nx, ny, area)
			mirrorCols(w.jm[:], nx, ny)
			addScaled(B0, w.jm[:], -0.5)
			jacN(w.jp[:], q, nx, ny, area)
			addScaled(B0, w.jp[:], -0.5)
			// −½λM − (−½λI): M has unit spectral radius, fold both into a
			// single dissipation bound.
			addScaledIdent(B0, lam)
			if s.Opts.Viscous && s.Opts.Wall == NoSlipIsothermal {
				mu := s.Opts.Mu(0.5 * (q.T + s.Opts.TWall))
				addScaledIdent(B0, mu*area/(met.WallHalf[i]*q.Rho))
			}
		case f == nj:
			// Outer boundary: the flux is Flux(q_in, q_inf); the freestream
			// argument is constant, so only the interior-side upwind
			// Jacobian ½(S·A+λI) enters — which cancels the f=nj-1 face's
			// −½S·A block on the outer row.
			q := s.prim[s.idx(i, nj-1)]
			lam := (math.Abs(q.U*nx+q.V*ny) + q.A) * area
			Bn := w.B[(nj-1)*16 : nj*16]
			jacN(w.jm[:], q, nx, ny, area)
			addScaled(Bn, w.jm[:], 0.5)
			addScaledIdent(Bn, 0.5*lam)
		default:
			m := s.prim[s.idx(i, f-1)]
			p := s.prim[s.idx(i, f)]
			lamM := math.Abs(m.U*nx+m.V*ny) + m.A
			lamP := math.Abs(p.U*nx+p.V*ny) + p.A
			lam := math.Max(lamM, lamP) * area
			jacN(w.jm[:], m, nx, ny, area)
			jacN(w.jp[:], p, nx, ny, area)
			Bm := w.B[(f-1)*16 : f*16]
			Cm := w.C[(f-1)*16 : f*16]
			Af := w.A[f*16 : (f+1)*16]
			Bf := w.B[f*16 : (f+1)*16]
			// res[f-1] += F, res[f] -= F with
			// ∂F/∂U_m ≈ ½(S·A(m) + λI), ∂F/∂U_p ≈ ½(S·A(p) − λI).
			addScaled(Bm, w.jm[:], 0.5)
			addScaledIdent(Bm, 0.5*lam)
			addScaled(Cm, w.jp[:], 0.5)
			addScaledIdent(Cm, -0.5*lam)
			addScaled(Af, w.jm[:], -0.5)
			addScaledIdent(Af, -0.5*lam)
			addScaled(Bf, w.jp[:], -0.5)
			addScaledIdent(Bf, 0.5*lam)
			if s.Opts.Viscous {
				if dn := met.JDist[i*(s.nj+1)+f]; dn > 0 {
					c := s.Opts.Mu(0.5*(m.T+p.T)) * area / (dn * 0.5 * (m.Rho + p.Rho))
					addScaledIdent(Bm, c)
					addScaledIdent(Cm, -c)
					addScaledIdent(Af, -c)
					addScaledIdent(Bf, c)
				}
			}
		}
	}
}

// equilibrate transforms the assembled system into the scaled variables
// (D⁻¹TD)(D⁻¹ΔU) = D⁻¹d with D the per-cell block diag(scl): every block
// entry becomes O(spectral radius), which the unscaled elimination is not —
// conserved-variable Jacobians span the mass-to-energy magnitude range and
// lose the factorization to cancellation.
func (st *implicitStepper) equilibrate(w *implicitLineWS) {
	nj := st.s.nj
	for j := 0; j < nj; j++ {
		for r := 0; r < 4; r++ {
			base := j*16 + r*4
			for c := 0; c < 4; c++ {
				w.A[base+c] *= st.rat[r*4+c]
				w.B[base+c] *= st.rat[r*4+c]
				w.C[base+c] *= st.rat[r*4+c]
			}
			w.D[j*4+r] /= st.scl[r]
		}
	}
}

// lineUpdateValid reports whether applying the line's solved increments
// keeps every cell physical (see Solver.physicalState).
func (st *implicitStepper) lineUpdateValid(i int, w *implicitLineWS) bool {
	s := st.s
	for j := 0; j < s.nj; j++ {
		k := s.idx(i, j)
		var cand Cons
		for c := 0; c < 4; c++ {
			cand[c] = s.U[k][c] + w.D[j*4+c]
		}
		if !s.physicalState(cand) {
			return false
		}
	}
	return true
}

// fallbackLine applies a one-stage explicit update to line i at the
// explicit CFL (the local time steps were built at the ramped CFL, so they
// are rescaled by Opts.CFL/cfl) — the diverging-line escape hatch.
func (st *implicitStepper) fallbackLine(i int) {
	s := st.s
	scale := s.Opts.CFL / st.cfl
	met := s.met
	for j := 0; j < s.nj; j++ {
		k := s.idx(i, j)
		dtv := scale * s.dt[k] / met.Vol[k]
		for c := 0; c < 4; c++ {
			s.U[k][c] -= dtv * s.res[k][c]
		}
	}
}
