package fvm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: the HLLE flux is rotation-consistent — the face-normal mass and
// energy fluxes and the normal/tangential momentum projections are invariant
// under rotating both states and the face by the same angle.
func TestHLLERotationInvariance(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mk := func() Prim {
			rho := 0.1 + r.Float64()*2
			p := 1e3 + r.Float64()*1e5
			T := 200 + r.Float64()*2000
			return Prim{
				Rho: rho,
				U:   r.Float64()*2000 - 1000,
				V:   r.Float64()*2000 - 1000,
				P:   p, T: T,
				A: math.Sqrt(1.4 * p / rho),
				E: p / (0.4 * rho),
			}
		}
		L, R := mk(), mk()
		th := r.Float64() * 2 * math.Pi
		c, s := math.Cos(th), math.Sin(th)
		rot := func(q Prim) Prim {
			q.U, q.V = c*q.U-s*q.V, s*q.U+c*q.V
			return q
		}
		// Face along +x in the original frame with |S| = 1.3.
		f0 := hlle(L, R, 1.3, 0)
		f1 := hlle(rot(L), rot(R), 1.3*c, 1.3*s)
		// Mass and energy components are scalars.
		if math.Abs(f0[0]-f1[0]) > 1e-8*(math.Abs(f0[0])+1) {
			return false
		}
		if math.Abs(f0[3]-f1[3]) > 1e-7*(math.Abs(f0[3])+1) {
			return false
		}
		// Momentum rotates as a vector.
		mx := c*f0[1] - s*f0[2]
		my := s*f0[1] + c*f0[2]
		return math.Abs(mx-f1[1]) < 1e-7*(math.Abs(mx)+1) &&
			math.Abs(my-f1[2]) < 1e-7*(math.Abs(my)+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(13))}); err != nil {
		t.Error(err)
	}
}

// Property: MUSCL reconstruction preserves positivity of density and
// pressure and stays within the local data bounds for monotone data.
func TestReconstructBounded(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mk := func(base float64) Prim {
			return Prim{
				Rho: base, P: base * 1e4,
				U: base * 100, V: 0,
				A: 300, E: 1e5, T: 300,
			}
		}
		// Monotone increasing sequence.
		v := []float64{0.5 + r.Float64(), 0, 0, 0}
		for i := 1; i < 4; i++ {
			v[i] = v[i-1] * (1 + r.Float64())
		}
		L, R := reconstruct(minmod, mk(v[0]), mk(v[1]), mk(v[2]), mk(v[3]), true, true)
		if L.Rho <= 0 || R.Rho <= 0 || L.P <= 0 || R.P <= 0 {
			return false
		}
		// Minmod keeps reconstructed values within neighbor bounds.
		return L.Rho >= v[1]-1e-12 && L.Rho <= v[2]+1e-12 &&
			R.Rho >= v[1]-1e-12 && R.Rho <= v[2]+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(29))}); err != nil {
		t.Error(err)
	}
}

// Pressure-only wall: verify via the mirrored HLLE construction directly.
func TestMirroredWallNoMassFlux(t *testing.T) {
	q := Prim{Rho: 1, U: 200, V: 100, P: 1e5, T: 300, A: 340, E: 2.5e5}
	g := mirror(q, 0, 1) // unit face normal +y
	f := hlle(g, q, 0, 2)
	if math.Abs(f[0]) > 1e-8*q.Rho*q.A {
		t.Errorf("wall mass flux %g", f[0])
	}
	// Pressure appears in the y-momentum component.
	if f[2] < 0.5*q.P {
		t.Errorf("wall pressure force %g missing", f[2])
	}
}
