// Package fvm is the shared structured finite-volume kernel behind the
// paper's Euler and Navier-Stokes solver classes: pluggable upwind flux
// kernels (HLLE, HLLC, AUSM+) for a general equation of state, optional
// MUSCL/minmod reconstruction, planar or axisymmetric metrics, thin-layer
// viscous terms, characteristic boundary conditions and pluggable time
// integrators — two-stage explicit local-time-step relaxation, or
// DPLR-style line-implicit relaxation along wall-normal lines that runs
// CFL in the hundreds on clustered viscous grids. Grid metrics are
// precomputed once per solve (grid.Metrics), flux assembly is parallelized
// across grid lines on a persistent per-solver worker pool, and the
// per-step hot loops are allocation-free.
package fvm

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"cataero/internal/gas"
	"cataero/internal/grid"
)

// Cons holds the conserved variables of one cell.
type Cons [4]float64 // rho, rho*u, rho*v, rho*E

// Prim holds the primitive variables of one cell.
type Prim struct {
	Rho, U, V, P, T, A, E float64 // E = specific internal energy
}

// WallKind selects the j=0 boundary treatment.
type WallKind int

const (
	SlipWall WallKind = iota // inviscid tangency (Euler)
	NoSlipIsothermal
)

// ProgressFunc observes a marching loop: phase names the sequencing stage
// ("solve" for a plain march, "coarse"/"fine" for a grid-sequenced one),
// step counts completed time steps within the phase (local to this process
// — a resumed run counts from its restore point), maxSteps is the phase's
// step budget, residual is the latest RMS density residual and diag carries
// the divergence-recovery counters. The callback runs on the marching
// goroutine after every step, so it must be cheap and must not call back
// into the solver.
type ProgressFunc func(phase string, step, maxSteps int, residual float64, diag Diag)

// Diag is the divergence-recovery diagnostics a progress callback carries:
// how hard the solve had to fight to converge, independent of whether it
// eventually did.
type Diag struct {
	// Fallbacks counts implicit lines that diverged and fell back to the
	// explicit stage over the run so far (implicit integrator only).
	Fallbacks int
	// Refits counts mid-march grid refits performed (multilevel solves).
	Refits int
	// Restarts counts checkpoint restores applied to reach this state — a
	// cold solve reports 0, a once-resumed run 1, and so on.
	Restarts int
}

// Options configures a Solver.
type Options struct {
	Gas     gas.Model
	Viscous bool
	Wall    WallKind
	TWall   float64                 // isothermal wall temperature
	Mu      func(T float64) float64 // viscosity law (viscous runs)
	K       func(T float64) float64 // conductivity law
	CFL     float64                 // explicit CFL number (default 0.8)
	MUSCL   bool
	Flux    string // flux kernel name (see FluxKernels); default DefaultFlux
	// Limiter selects the MUSCL slope limiter by name (see Limiters):
	// "minmod" (the default: most dissipative, strictly TVD) or "vanalbada"
	// (smooth and differentiable, so the implicit CFL ramp stops hunting the
	// minmod limit cycle and climbs higher).
	Limiter string
	// TimeStepping selects the time integrator by name (see Integrators):
	// "explicit" (two-stage local-time-step relaxation, the default) or
	// "implicit" (line-implicit block-tridiagonal relaxation along
	// wall-normal j-lines, which runs CFL in the hundreds on clustered
	// viscous grids).
	TimeStepping string
	// CFLRamp configures the implicit integrator's CFL schedule; zero-value
	// fields take the DefaultCFLRamp defaults. The explicit integrator
	// ignores it and uses CFL directly.
	CFLRamp CFLRamp
	// ImplicitSweep selects the implicit integrator's line-sweep schedule by
	// name (see ImplicitSweeps): "jline" (wall-normal lines only, the
	// default) or "adi" (alternating-direction: each step runs the
	// wall-normal pass and then a streamwise i-line pass on a fresh
	// residual, so corrections propagate along the body in one step instead
	// of one cell per step — the schedule for high-aspect-ratio grids whose
	// streamwise cell count, not wall-normal stiffness, limits convergence).
	// The explicit integrator ignores it.
	ImplicitSweep string
	// FreezeLimiterAt, when positive, freezes the MUSCL limiter once the
	// RMS density residual has dropped below FreezeLimiterAt times its
	// initial value (so it must be in (0, 1); 0 disables freezing): the
	// next step records every interior face's applied limiter offsets and
	// later steps replay them, removing the limiter evaluations and outer-
	// stencil gathers from the endgame of a converged-shock march. A
	// mid-march grid refit invalidates the recorded offsets and drops back
	// to live limiting until the threshold latches again.
	FreezeLimiterAt float64
	FreestreamV     [2]float64 // freestream velocity (x, y components)
	FreestreamPT    [2]float64 // freestream pressure, temperature
	// Pool, when non-nil, is a shared worker pool for the parallel sweeps;
	// the solver does not own it and Close leaves it running. When nil the
	// solver builds a private GOMAXPROCS-sized pool and releases it on
	// Close.
	Pool *Pool
	// Progress, when non-nil, is invoked after every time step of
	// RunCtx/RunToCtx with the live step count and residual.
	Progress ProgressFunc
	// CheckpointEvery, when positive together with CheckpointSink, makes
	// the marching loops hand a state checkpoint to the sink every
	// CheckpointEvery completed steps, plus a final one when the march is
	// cancelled mid-flight (context cancellation or deadline), so the work
	// done before the cancellation survives. It never changes the solution.
	CheckpointEvery int
	// CheckpointSink receives the periodic checkpoints on the marching
	// goroutine. The *Checkpoint is a per-solver scratch reused between
	// emissions: encode (Checkpoint.AppendBinary) or deep-copy it before
	// returning.
	CheckpointSink func(*Checkpoint)
	// Restore, when non-nil, resumes the march from the checkpoint instead
	// of from freestream: the loop whose phase matches Restore.Phase
	// reloads the saved state and continues at the saved step. A checkpoint
	// that does not fit (wrong shape or phase) is ignored and the solve
	// starts cold — restoring is an optimization, never a requirement.
	Restore *Checkpoint
}

// Solver marches the finite-volume equations to steady state.
type Solver struct {
	G    *grid.Grid2D
	Opts Options

	U    []Cons // cell states, row-major [i*nj + j]
	prim []Prim
	res  []Cons
	u0   []Cons // RK stage storage
	dt   []float64
	// forcing, when non-nil, is the FAS (full approximation storage) defect
	// correction a multilevel V-cycle installs on a coarse level:
	// computeResidual subtracts it cell-wise, so the level relaxes
	// R(U) - forcing = 0 and its fixed point reproduces the restricted fine
	// solution instead of the coarse grid's own.
	forcing []Cons

	met  *grid.Metrics // precomputed face vectors, volumes, centroids
	flux FluxKernel
	// batch is the kernel's batched fast path, type-asserted once here so
	// the sweeps pay no per-face interface dispatch; nil when the kernel
	// has no batched form (the sweeps then fall back to scalar Flux calls
	// over the same pencils).
	batch BatchFluxKernel
	lim   LimiterFunc // MUSCL slope limiter (Options.Limiter)
	// limKind specializes the batched reconstruction's limiter calls (see
	// recon.go); limMode/limFirst drive the frozen-limiter state machine
	// and frzI/frzJ hold the recorded per-face limiter offsets (allocated
	// only when Options.FreezeLimiterAt is set).
	limKind    int
	limMode    int
	limFirst   float64
	frzI, frzJ []float64
	pool       *Pool
	// ownsPool marks a private pool (no Options.Pool) that Close releases.
	ownsPool bool
	// phase labels Progress callbacks ("solve"; SolveSequenced relabels its
	// stages "coarse" and "fine").
	phase string

	// stepper is the configured time integrator bound to this solver
	// (Options.TimeStepping); Step delegates to it.
	stepper Stepper
	// cfl is the CFL number timeSteps reads: Opts.CFL for the explicit
	// integrator, the live ramped value for the implicit one.
	cfl float64

	// Per-step sweep machinery, allocated once so Step is allocation-free:
	// prebuilt range closures (method values), the reusable sweep
	// WaitGroup, the per-chunk partial sums of the residual reduction, the
	// face-major flux planes the residual passes difference, and the
	// per-chunk SoA face-state pencils of the batched reconstruction.
	sweepWG                        sync.WaitGroup
	partial                        []float64
	fluxI, fluxJ                   []float64 // face-major (4/face) flux planes
	bws                            []batchWS
	swPrim, swDT, swFluxI, swFluxJ func(ci, lo, hi int)
	swAccum, swStage1, swStage2    func(ci, lo, hi int)

	uInf      Cons
	pInf      Prim
	ni, nj    int
	closeOnce sync.Once

	// Checkpoint/restore state: the reusable scratch Checkpoint fills, the
	// pending loop offset a Restore installs (consumed by takeResume), and
	// the cumulative restore count reported in Diag.
	ckpt        *Checkpoint
	resumeStep  int
	resumeFirst float64
	restarts    int
}

// New builds a solver on grid g with options o and initializes every cell to
// the freestream state.
func New(g *grid.Grid2D, o Options) (*Solver, error) {
	if o.CFL == 0 {
		o.CFL = 0.8
	}
	if o.Gas == nil {
		return nil, fmt.Errorf("fvm: gas model required")
	}
	if o.Viscous && (o.Mu == nil || o.K == nil) {
		return nil, fmt.Errorf("fvm: viscous runs need Mu and K laws")
	}
	if o.MUSCL && (g.NI < 4 || g.NJ < 4) {
		return nil, fmt.Errorf("fvm: MUSCL needs at least a 4x4 grid, got %dx%d", g.NI, g.NJ)
	}
	if o.FreezeLimiterAt < 0 || o.FreezeLimiterAt >= 1 {
		return nil, fmt.Errorf("fvm: FreezeLimiterAt %g outside [0, 1)", o.FreezeLimiterAt)
	}
	flux, err := FluxKernelFor(o.Flux)
	if err != nil {
		return nil, err
	}
	lim, err := LimiterFor(o.Limiter)
	if err != nil {
		return nil, err
	}
	integ, err := IntegratorFor(o.TimeStepping)
	if err != nil {
		return nil, err
	}
	s := &Solver{G: g, Opts: o, ni: g.NI, nj: g.NJ, met: g.Metrics(), flux: flux, lim: lim, phase: "solve", cfl: o.CFL}
	n := s.ni * s.nj
	s.U = make([]Cons, n)
	s.prim = make([]Prim, n)
	s.res = make([]Cons, n)
	s.u0 = make([]Cons, n)
	s.dt = make([]float64, n)

	rho, e, err := o.Gas.EnergyPT(o.FreestreamPT[0], o.FreestreamPT[1])
	if err != nil {
		return nil, fmt.Errorf("fvm: freestream state: %w", err)
	}
	vx, vy := o.FreestreamV[0], o.FreestreamV[1]
	s.uInf = Cons{rho, rho * vx, rho * vy, rho * (e + 0.5*(vx*vx+vy*vy))}
	p, T, a, err := o.Gas.PrimState(rho, e)
	if err != nil {
		return nil, err
	}
	s.pInf = Prim{Rho: rho, U: vx, V: vy, P: p, T: T, A: a, E: e}
	for i := range s.U {
		s.U[i] = s.uInf
	}
	if o.Pool != nil {
		s.pool = o.Pool
	} else {
		s.pool = NewPool(0)
		s.ownsPool = true
	}
	// Hoist the per-step sweep closures, reduction scratch, flux planes and
	// reconstruction pencils out of the hot loop: everything binds and
	// allocates once here, so Step allocates nothing.
	s.partial = make([]float64, s.pool.chunkCount(s.ni))
	s.fluxI = make([]float64, 4*(s.ni+1)*s.nj)
	s.fluxJ = make([]float64, 4*s.ni*(s.nj+1))
	nws := s.pool.chunkCount(s.ni + 1)
	if c := s.pool.chunkCount(s.ni); c > nws {
		nws = c
	}
	s.bws = make([]batchWS, nws)
	for w := range s.bws {
		s.bws[w].L = newFaceStates(s.nj)
		s.bws[w].R = newFaceStates(s.nj)
	}
	s.batch, _ = flux.(BatchFluxKernel)
	switch o.Limiter {
	case "", LimiterMinmod:
		s.limKind = limKindMinmod
	case LimiterVanAlbada:
		s.limKind = limKindVanAlbada
	default:
		s.limKind = limKindGeneric
	}
	if o.FreezeLimiterAt > 0 && o.MUSCL {
		s.frzI = make([]float64, 8*(s.ni+1)*s.nj)
		s.frzJ = make([]float64, 8*s.ni*(s.nj+1))
	}
	s.swPrim = s.primRange
	s.swDT = s.dtRange
	s.swFluxI = s.fluxIRange
	s.swFluxJ = s.fluxJRange
	s.swAccum = s.accumRange
	s.swStage1 = s.stage1Range
	s.swStage2 = s.stage2Range
	if s.stepper, err = integ.NewStepper(s); err != nil {
		return nil, err
	}
	return s, nil
}

// Close releases the solver's private worker pool (a shared Options.Pool is
// left running for its other solvers). The solver must not be stepped after
// Close; calling Close more than once is safe.
func (s *Solver) Close() {
	s.closeOnce.Do(func() {
		if s.ownsPool {
			s.pool.Close()
		}
	})
}

func (s *Solver) idx(i, j int) int { return i*s.nj + j }

// decode converts a conserved state to primitives, clamping nonphysical
// intermediate states to keep transient starts alive.
func (s *Solver) decode(u Cons) Prim {
	rho := u[0]
	if rho < 1e-12 {
		rho = 1e-12
	}
	vx := u[1] / rho
	vy := u[2] / rho
	e := u[3]/rho - 0.5*(vx*vx+vy*vy)
	if e < 1e-3*s.pInf.E {
		e = 1e-3 * s.pInf.E
	}
	p, T, a, err := s.Opts.Gas.PrimState(rho, e)
	if err != nil {
		// Fall back to freestream-like sound speed; the transient usually
		// washes these cells out.
		p = s.pInf.P
		T = s.pInf.T
		a = s.pInf.A
	}
	return Prim{Rho: rho, U: vx, V: vy, P: p, T: T, A: a, E: e}
}

// physicalState reports whether a candidate conserved state stays in the
// physical state space: finite, with density and internal energy above
// small floors relative to the freestream. Shared by the implicit
// integrator's line-update guard and the multigrid correction guard.
func (s *Solver) physicalState(u Cons) bool {
	rho := u[0]
	if math.IsNaN(rho) || math.IsNaN(u[1]) || math.IsNaN(u[2]) || math.IsNaN(u[3]) {
		return false
	}
	if rho <= 1e-9*s.pInf.Rho {
		return false
	}
	e := u[3]/rho - 0.5*(u[1]*u[1]+u[2]*u[2])/(rho*rho)
	return !math.IsNaN(e) && e > 1e-6*s.pInf.E
}

// updatePrimitives refreshes the primitive cache in parallel.
func (s *Solver) updatePrimitives() {
	s.pool.sweep(s.ni, &s.sweepWG, s.swPrim)
}

// primRange decodes the primitive cache for i-lines [lo, hi).
//
//cataero:hotpath
func (s *Solver) primRange(ci, lo, hi int) {
	for i := lo; i < hi; i++ {
		for j := 0; j < s.nj; j++ {
			k := s.idx(i, j)
			s.prim[k] = s.decode(s.U[k])
		}
	}
}

func physFlux(q Prim, nx, ny float64) Cons {
	un := q.U*nx + q.V*ny
	H := q.E + q.P/q.Rho + 0.5*(q.U*q.U+q.V*q.V)
	return Cons{
		q.Rho * un,
		q.Rho*q.U*un + q.P*nx,
		q.Rho*q.V*un + q.P*ny,
		q.Rho * un * H,
	}
}

func consOf(q Prim) Cons {
	return Cons{
		q.Rho,
		q.Rho * q.U,
		q.Rho * q.V,
		q.Rho * (q.E + 0.5*(q.U*q.U+q.V*q.V)),
	}
}

// LimiterFunc is a MUSCL slope limiter: given the backward and forward
// one-sided differences of a quantity, it returns the limited slope used for
// the half-cell extrapolation.
type LimiterFunc func(a, b float64) float64

// DefaultLimiter is the slope limiter used when Options.Limiter is empty.
const DefaultLimiter = LimiterMinmod

// limiterTable maps the Options.Limiter names; minmod is the strictly TVD
// default, vanalbada the smooth (differentiable) variant whose limited slope
// varies continuously with the solution — under implicit stepping that
// continuity is what keeps the residual from limit-cycling between limiter
// branches, so the convergence-gated CFL ramp climbs instead of stalling.
var limiterTable = map[string]LimiterFunc{
	LimiterMinmod:    minmod,
	LimiterVanAlbada: vanAlbada,
}

// LimiterFor resolves a MUSCL slope limiter by name; the empty name resolves
// to DefaultLimiter.
func LimiterFor(name string) (LimiterFunc, error) {
	if name == "" {
		name = DefaultLimiter
	}
	if f, ok := limiterTable[name]; ok {
		return f, nil
	}
	return nil, fmt.Errorf("fvm: no slope limiter %q (have %v)", name, Limiters())
}

// Limiters returns the registered slope-limiter names in ascending order —
// the valid values of Options.Limiter.
func Limiters() []string {
	out := make([]string, 0, len(limiterTable))
	for n := range limiterTable {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// minmod is the minmod limited slope: the smaller one-sided difference,
// or zero at extrema.
//
//cataero:hotpath
func minmod(a, b float64) float64 {
	if a*b <= 0 {
		return 0
	}
	if math.Abs(a) < math.Abs(b) {
		return a
	}
	return b
}

// vanAlbada is the van Albada limited slope: a smooth average of the two
// one-sided differences that tends to the centered slope where they agree
// and to zero at extrema, with no switching branch for the residual to
// limit-cycle on. The epsilon regularizes the 0/0 at a flat field.
//
//cataero:hotpath
func vanAlbada(a, b float64) float64 {
	if a*b <= 0 {
		return 0
	}
	const eps = 1e-32
	return a * b * (a + b) / (a*a + b*b + eps)
}

// reconstruct returns the MUSCL-extrapolated left/right primitive states at
// the face between cells m (left) and p (right), using neighbors mm and pp
// and the configured slope limiter. ok flags indicate whether the outer
// neighbors exist.
func reconstruct(lim LimiterFunc, qmm, qm, qp, qpp Prim, hasMM, hasPP bool) (Prim, Prim) {
	L, R := qm, qp
	if hasMM {
		L.Rho = qm.Rho + 0.5*lim(qm.Rho-qmm.Rho, qp.Rho-qm.Rho)
		L.U = qm.U + 0.5*lim(qm.U-qmm.U, qp.U-qm.U)
		L.V = qm.V + 0.5*lim(qm.V-qmm.V, qp.V-qm.V)
		L.P = qm.P + 0.5*lim(qm.P-qmm.P, qp.P-qm.P)
	}
	if hasPP {
		R.Rho = qp.Rho - 0.5*lim(qp.Rho-qm.Rho, qpp.Rho-qp.Rho)
		R.U = qp.U - 0.5*lim(qp.U-qm.U, qpp.U-qp.U)
		R.V = qp.V - 0.5*lim(qp.V-qm.V, qpp.V-qp.V)
		R.P = qp.P - 0.5*lim(qp.P-qm.P, qpp.P-qp.P)
	}
	if L.Rho <= 0 || L.P <= 0 {
		L = qm
	}
	if R.Rho <= 0 || R.P <= 0 {
		R = qp
	}
	// Recompute derived members approximately (a from pressure/density with
	// the cell's gamma-like ratio; adequate for wave-speed estimates).
	L.A = qm.A * math.Sqrt((L.P/qm.P)*(qm.Rho/L.Rho))
	R.A = qp.A * math.Sqrt((R.P/qp.P)*(qp.Rho/R.Rho))
	L.E = qm.E * (L.P / qm.P) * (qm.Rho / L.Rho)
	R.E = qp.E * (R.P / qp.P) * (qp.Rho / R.Rho)
	return L, R
}
