package fvm

import (
	"math"
	"testing"

	"cataero/internal/gas"
	"cataero/internal/geometry"
	"cataero/internal/grid"
	"cataero/internal/shock"
)

func TestHLLEConsistency(t *testing.T) {
	// F(U,U) must equal the physical flux.
	q := Prim{Rho: 1.2, U: 300, V: 50, P: 101325, T: 288, A: 340, E: 2e5}
	f := hlle(q, q, 2, 0) // face area 2 in x
	want := physFlux(q, 1, 0)
	for c := 0; c < 4; c++ {
		if math.Abs(f[c]-2*want[c]) > 1e-9*math.Abs(2*want[c])+1e-12 {
			t.Errorf("component %d: %g want %g", c, f[c], 2*want[c])
		}
	}
}

func TestHLLESupersonicUpwinding(t *testing.T) {
	// Fully supersonic left-to-right: flux equals left physical flux.
	L := Prim{Rho: 1, U: 1000, V: 0, P: 1e4, T: 300, A: 200, E: 2e5}
	R := Prim{Rho: 0.5, U: 900, V: 0, P: 5e3, T: 250, A: 180, E: 1.8e5}
	f := hlle(L, R, 1, 0)
	want := physFlux(L, 1, 0)
	for c := 0; c < 4; c++ {
		if math.Abs(f[c]-want[c]) > 1e-9*math.Abs(want[c]) {
			t.Errorf("component %d: %g want %g", c, f[c], want[c])
		}
	}
}

func TestMinmod(t *testing.T) {
	if minmod(1, 2) != 1 || minmod(-2, -1) != -1 || minmod(1, -1) != 0 || minmod(0, 5) != 0 {
		t.Error("minmod broken")
	}
}

func TestMirror(t *testing.T) {
	q := Prim{U: 100, V: 50}
	m := mirror(q, 1, 0) // face normal +x
	if m.U != -100 || m.V != 50 {
		t.Errorf("mirror wrong: %+v", m)
	}
}

func bluntSolver(t *testing.T, g gas.Model, mach float64, muscl bool) *Solver {
	t.Helper()
	body := geometry.NewSphere(1.0)
	gr, err := grid.NewBlunt(body, body.MaxS(), 16, 24, func(s float64) float64 {
		return 0.35 + 0.35*s
	}, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	gr.Axisymmetric = true // a sphere, not a cylinder: standoff ~0.15R
	pInf, TInf := 100.0, 250.0
	aInf := math.Sqrt(1.4 * 287.05 * TInf)
	s, err := New(gr, Options{
		Gas:          g,
		FreestreamV:  [2]float64{mach * aInf, 0},
		FreestreamPT: [2]float64{pInf, TInf},
		CFL:          0.6,
		MUSCL:        muscl,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFreestreamPreservation(t *testing.T) {
	// With a uniform freestream everywhere and no body influence yet, a
	// single step must not generate spurious disturbances in the interior
	// far from boundaries (discrete geometric conservation).
	s := bluntSolver(t, gas.NewIdealAir(), 3, false)
	// Replace the wall with a transparent outflow for this test by checking
	// only cells away from j=0.
	s.Step()
	for i := 2; i < s.ni-2; i++ {
		for j := s.nj / 2; j < s.nj-1; j++ {
			q := s.Primitive(i, j)
			if math.Abs(q.P-100)/100 > 0.02 {
				t.Fatalf("cell (%d,%d): pressure disturbed %g", i, j, q.P)
			}
		}
	}
}

func TestBluntBodyShockCaptureIdeal(t *testing.T) {
	// Mach 6 sphere: stagnation pressure from the solver should approach
	// the normal-shock + isentropic-compression value (Rayleigh pitot).
	s := bluntSolver(t, gas.NewIdealAir(), 6, true)
	if _, err := s.Run(4000, 1e-3); err != nil {
		t.Fatal(err)
	}
	q := s.Primitive(0, 0)
	// Rayleigh pitot pressure for M=6, gamma=1.4: p02/p1 = 46.81.
	if math.Abs(q.P/100-46.81) > 5 {
		t.Errorf("stagnation pressure ratio %g want ~46.8", q.P/100)
	}
	// Shock standoff for a sphere at M=6: delta/R ~ 0.1-0.25.
	xs, _ := s.ShockLocus(2)
	standoff := -xs[0] // nose at x=0, shock upstream (negative x)
	if standoff < 0.05 || standoff > 0.3 {
		t.Errorf("standoff %g outside band", standoff)
	}
	// Wall pressure decreases away from the stagnation point.
	wp := s.WallPressure()
	if wp[s.ni-1] > wp[0] {
		t.Errorf("wall pressure not decreasing: %g -> %g", wp[0], wp[s.ni-1])
	}
}

func TestAxisymmetricRunsStable(t *testing.T) {
	body := geometry.NewSphere(0.3)
	gr, err := grid.NewBlunt(body, body.MaxS(), 12, 20, func(s float64) float64 {
		return 0.12 + 0.12*s
	}, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	gr.Axisymmetric = true
	aInf := math.Sqrt(1.4 * 287.05 * 217)
	s, err := New(gr, Options{
		Gas:          gas.NewIdealAir(),
		FreestreamV:  [2]float64{5 * aInf, 0},
		FreestreamPT: [2]float64{500, 217},
		CFL:          0.5,
		MUSCL:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(2500, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res) {
		t.Fatal("NaN residual")
	}
	// Axisymmetric stagnation pressure also near the pitot value (M=5:
	// p02/p1 = 32.65).
	q := s.Primitive(0, 0)
	if math.Abs(q.P/500-32.65) > 4 {
		t.Errorf("axisymmetric pitot ratio %g want ~32.7", q.P/500)
	}
}

func TestEquilibriumGasShockCloser(t *testing.T) {
	// The paper's Fig. 4 physics: a reacting (equilibrium) gas has a denser
	// shock layer and a smaller standoff distance than ideal gas.
	if testing.Short() {
		t.Skip("equilibrium table build in short mode")
	}
	eqm := gas.NewEquilibriumAir()
	tab, err := gas.NewTable(eqm, 1e-5, 0.3, 1e4, 4e7, 36, 36)
	if err != nil {
		t.Fatal(err)
	}
	// 6.7 km/s at 65.5 km density -> strongly reacting. Planar (cylinder)
	// case: the ideal standoff is ~0.45R, so leave generous room.
	body := geometry.NewSphere(1.0)
	gr, err := grid.NewBlunt(body, body.MaxS(), 14, 26, func(s float64) float64 {
		return 0.9 + 0.5*s
	}, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	pInf, TInf := 10.0, 233.0
	mkSolver := func(g gas.Model) *Solver {
		s, err := New(gr, Options{
			Gas:          g,
			FreestreamV:  [2]float64{6700, 0},
			FreestreamPT: [2]float64{pInf, TInf},
			CFL:          0.5,
			MUSCL:        true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	sI := mkSolver(gas.NewIdealAir())
	if _, err := sI.Run(2500, 1e-3); err != nil {
		t.Fatal(err)
	}
	sE := mkSolver(tab)
	if _, err := sE.Run(2500, 1e-3); err != nil {
		t.Fatal(err)
	}
	xi, _ := sI.ShockLocus(3)
	xe, _ := sE.ShockLocus(3)
	standoffI := -xi[0]
	standoffE := -xe[0]
	if standoffE >= standoffI {
		t.Errorf("equilibrium standoff %g should be below ideal %g", standoffE, standoffI)
	}
	// Equilibrium post-shock density ratio is far higher; check the shock
	// layer density at the nose.
	qI := sI.Primitive(0, s0j(sI))
	qE := sE.Primitive(0, s0j(sE))
	if qE.Rho < 1.3*qI.Rho {
		t.Errorf("equilibrium layer density %g vs ideal %g", qE.Rho, qI.Rho)
	}
	// Equilibrium stagnation temperature far below the ideal value.
	if qE.T > 0.7*qI.T {
		t.Errorf("equilibrium T %g not much cooler than ideal %g", qE.T, qI.T)
	}
	// Quantitative anchor: equilibrium density ratio across the shock
	// matches the RH solution within ~25%.
	m := gas.NewEquilibriumAir()
	st, err := shock.EquilibriumJump(m.Eq, m.Y0, pInf, TInf, 6700)
	if err != nil {
		t.Fatal(err)
	}
	rhoInf := sE.Freestream().Rho
	want := st.Rho / rhoInf
	got := qE.Rho / rhoInf
	if math.Abs(got-want)/want > 0.3 {
		t.Errorf("captured density ratio %g vs RH %g", got, want)
	}
}

// s0j returns a j index just behind the wall (first cell) for nose probing.
func s0j(s *Solver) int { return 0 }

func TestSolverErrors(t *testing.T) {
	body := geometry.NewSphere(1.0)
	gr, _ := grid.NewBlunt(body, body.MaxS(), 4, 4, func(s float64) float64 { return 0.3 }, 1.2)
	if _, err := New(gr, Options{}); err == nil {
		t.Error("missing gas model accepted")
	}
	if _, err := New(gr, Options{Gas: gas.NewIdealAir(), Viscous: true}); err == nil {
		t.Error("viscous without transport laws accepted")
	}
}
