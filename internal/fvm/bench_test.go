package fvm

import (
	"context"
	"math"
	"testing"

	"cataero/internal/gas"
	"cataero/internal/geometry"
	"cataero/internal/grid"
	"cataero/internal/transport"
)

// benchSolver builds an NS-like axisymmetric viscous solver at the Fig. 9
// grid size so BenchmarkStep tracks the real per-time-step cost of the
// hemisphere NS hot path (flux assembly, time steps, two RK stages).
func benchSolver(b *testing.B, viscous bool) *Solver {
	return benchSolverTS(b, viscous, "")
}

// benchSolverTS is benchSolver with an explicit time-integrator choice.
func benchSolverTS(b *testing.B, viscous bool, ts string) *Solver {
	b.Helper()
	body := geometry.NewSphere(0.0127)
	g, err := grid.NewBlunt(body, body.MaxS(), 20, 32, func(s float64) float64 {
		return 0.35*0.0127 + 0.3*s
	}, 1.08)
	if err != nil {
		b.Fatal(err)
	}
	g.Axisymmetric = true
	o := Options{
		Gas:          gas.NewIdealAir(),
		FreestreamV:  [2]float64{6 * math.Sqrt(1.4*287.05*217), 0},
		FreestreamPT: [2]float64{550, 217},
		CFL:          0.4,
		MUSCL:        true,
		TimeStepping: ts,
	}
	if viscous {
		o.Viscous = true
		o.Wall = NoSlipIsothermal
		o.TWall = 1500
		o.Mu = transport.Sutherland
		o.K = transport.SutherlandConductivity
	}
	s, err := New(g, o)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkStepEuler measures one explicit time step of the inviscid path.
func BenchmarkStepEuler(b *testing.B) {
	s := benchSolver(b, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := s.Step(); math.IsNaN(r) {
			b.Fatal("NaN residual")
		}
	}
}

// BenchmarkStepViscous measures one explicit time step of the thin-layer
// viscous path (the Fig. 9 NS configuration).
func BenchmarkStepViscous(b *testing.B) {
	s := benchSolver(b, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := s.Step(); math.IsNaN(r) {
			b.Fatal("NaN residual")
		}
	}
}

// BenchmarkStepImplicit measures one line-implicit time step of the viscous
// path: full residual plus the per-line block-tridiagonal solves.
func BenchmarkStepImplicit(b *testing.B) {
	s := benchSolverTS(b, true, "implicit")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := s.Step(); math.IsNaN(r) {
			b.Fatal("NaN residual")
		}
	}
}

// benchSolveViscous is the reference viscous (Fig. 9 class) solve the
// explicit-vs-implicit benchmarks converge: same grid, gas and tolerance,
// only the integrator differs.
func benchSolveViscous(b *testing.B, ts string) {
	b.Helper()
	steps := 0
	s := benchSolverTS(b, true, ts)
	s.Opts.Progress = func(phase string, step, maxSteps int, residual float64) { steps = step }
	if _, err := s.Run(6000, 5e-4); err != nil {
		b.Fatal(err)
	}
	s.Close()
	b.ReportMetric(float64(steps), "steps/op")
}

// BenchmarkSolveExplicit converges the reference viscous case with the
// explicit two-stage integrator — the baseline the line-implicit scheme has
// to beat.
func BenchmarkSolveExplicit(b *testing.B) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSolveViscous(b, "explicit")
	}
}

// BenchmarkSolveImplicit converges the same viscous case with line-implicit
// (DPLR-style) time stepping: the wall-normal CFL restriction is removed,
// so the clustered viscous grid converges in several-fold fewer, modestly
// more expensive steps.
func BenchmarkSolveImplicit(b *testing.B) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSolveViscous(b, "implicit")
	}
}

func benchSolveCase(b *testing.B) (*grid.Grid2D, Options) {
	b.Helper()
	body := geometry.NewSphere(1.0)
	g, err := grid.NewBlunt(body, body.MaxS(), 16, 24, func(s float64) float64 {
		return 0.35 + 0.35*s
	}, 1.3)
	if err != nil {
		b.Fatal(err)
	}
	g.Axisymmetric = true
	aInf := math.Sqrt(1.4 * 287.05 * 250)
	return g, Options{
		Gas:          gas.NewIdealAir(),
		FreestreamV:  [2]float64{6 * aInf, 0},
		FreestreamPT: [2]float64{100, 250},
		CFL:          0.6,
		MUSCL:        true,
	}
}

// BenchmarkSolveFineOnly converges the M=6 sphere on the fine grid from
// freestream — the baseline a grid-sequenced solve has to beat.
func BenchmarkSolveFineOnly(b *testing.B) {
	g, o := benchSolveCase(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := New(g, o)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(6000, 1e-3); err != nil {
			b.Fatal(err)
		}
		s.Close()
	}
}

// BenchmarkSolveSequenced converges the same case coarse-first: the coarse
// stage establishes the shock cheaply, and the fine stage finishes to the
// same absolute residual a freestream-started fine solve reaches at the
// 1e-3 drop.
func BenchmarkSolveSequenced(b *testing.B) {
	g, o := benchSolveCase(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, _, err := SolveSequenced(context.Background(), g, o, 6000, 1e-3, SequenceOptions{})
		if err != nil {
			b.Fatal(err)
		}
		s.Close()
	}
}
