package fvm

import (
	"context"
	"fmt"
	"math"
	"testing"

	"cataero/internal/gas"
	"cataero/internal/geometry"
	"cataero/internal/grid"
)

// benchSolver builds an NS-like axisymmetric viscous solver at the Fig. 9
// grid size so BenchmarkStep tracks the real per-time-step cost of the
// hemisphere NS hot path (flux assembly, time steps, two RK stages).
func benchSolver(b *testing.B, viscous bool) *Solver {
	return benchSolverTS(b, viscous, "")
}

// benchSolverTS is benchSolver with an explicit time-integrator choice. The
// viscous configuration is the shared ReferenceViscousCase, so `catsim
// bench` and these benchmarks measure the same solve.
func benchSolverTS(b *testing.B, viscous bool, ts string) *Solver {
	b.Helper()
	if viscous {
		g, o, err := ReferenceViscousCase(20, 32, ts)
		if err != nil {
			b.Fatal(err)
		}
		s, err := New(g, o)
		if err != nil {
			b.Fatal(err)
		}
		return s
	}
	body := geometry.NewSphere(0.0127)
	g, err := grid.NewBlunt(body, body.MaxS(), 20, 32, func(s float64) float64 {
		return 0.35*0.0127 + 0.3*s
	}, 1.08)
	if err != nil {
		b.Fatal(err)
	}
	g.Axisymmetric = true
	o := Options{
		Gas:          gas.NewIdealAir(),
		FreestreamV:  [2]float64{6 * math.Sqrt(1.4*287.05*217), 0},
		FreestreamPT: [2]float64{550, 217},
		CFL:          0.4,
		MUSCL:        true,
		TimeStepping: ts,
	}
	s, err := New(g, o)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkStepEuler measures one explicit time step of the inviscid path.
func BenchmarkStepEuler(b *testing.B) {
	s := benchSolver(b, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := s.Step(); math.IsNaN(r) {
			b.Fatal("NaN residual")
		}
	}
}

// BenchmarkStepViscous measures one explicit time step of the thin-layer
// viscous path (the Fig. 9 NS configuration).
func BenchmarkStepViscous(b *testing.B) {
	s := benchSolver(b, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := s.Step(); math.IsNaN(r) {
			b.Fatal("NaN residual")
		}
	}
}

// BenchmarkStepImplicit measures one line-implicit time step of the viscous
// path: full residual plus the per-line block-tridiagonal solves.
func BenchmarkStepImplicit(b *testing.B) {
	s := benchSolverTS(b, true, "implicit")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := s.Step(); math.IsNaN(r) {
			b.Fatal("NaN residual")
		}
	}
}

// BenchmarkStepImplicitADI measures one alternating-direction implicit step:
// the j-line pass of BenchmarkStepImplicit plus a residual refresh and the
// streamwise i-line block-tridiagonal pass.
func BenchmarkStepImplicitADI(b *testing.B) {
	g, o, err := ReferenceViscousCase(20, 32, TimeSteppingImplicit)
	if err != nil {
		b.Fatal(err)
	}
	o.ImplicitSweep = ImplicitSweepADI
	s, err := New(g, o)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := s.Step(); math.IsNaN(r) {
			b.Fatal("NaN residual")
		}
	}
}

// benchSolveViscous converges the reference viscous (Fig. 9 class) case at
// the given grid size: same gas and tolerance across integrators and
// schedules, so the benchmarks compare only the marching strategy. A non-nil
// seq routes the solve through the multilevel driver.
func benchSolveViscous(b *testing.B, ni, nj int, ts string, seq *SequenceOptions) {
	b.Helper()
	g, o, err := ReferenceViscousCase(ni, nj, ts)
	if err != nil {
		b.Fatal(err)
	}
	steps := 0
	o.Progress = func(phase string, step, maxSteps int, residual float64, diag Diag) { steps++ }
	var s *Solver
	if seq != nil {
		s, _, err = SolveMultilevel(context.Background(), g, o, 6000, 5e-4, *seq)
	} else {
		if s, err = New(g, o); err == nil {
			_, err = s.Run(6000, 5e-4)
		}
	}
	if err != nil {
		b.Fatal(err)
	}
	s.Close()
	b.ReportMetric(float64(steps), "steps/op")
}

// benchSizes are the grid sizes the Solve benchmarks sweep: the Fig. 9
// reference (20x32) and its refinements. The multilevel win over
// single-level implicit grows with resolution — the coarse levels absorb
// more of the transient the more the fine grid costs.
var benchSizes = [][2]int{{20, 32}, {40, 64}, {80, 128}}

// BenchmarkSolveExplicit converges the reference viscous case with the
// explicit two-stage integrator — the baseline the line-implicit scheme has
// to beat.
func BenchmarkSolveExplicit(b *testing.B) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSolveViscous(b, 20, 32, "explicit", nil)
	}
}

// BenchmarkSolveImplicit converges the viscous case with single-level
// line-implicit (DPLR-style) time stepping at each benchmark size: the
// wall-normal CFL restriction is removed, so the clustered viscous grid
// converges in several-fold fewer, modestly more expensive steps. The
// 20x32 sub-benchmark is the historical BenchmarkSolveImplicit case.
func BenchmarkSolveImplicit(b *testing.B) {
	for _, sz := range benchSizes {
		b.Run(fmt.Sprintf("%dx%d", sz[0], sz[1]), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchSolveViscous(b, sz[0], sz[1], "implicit", nil)
			}
		})
	}
}

// BenchmarkSolveMultigrid converges the same viscous case through the
// multilevel driver (3-level cascade, line-implicit smoothing on every
// level) — the headline comparison against BenchmarkSolveImplicit at the
// same sizes: ~1.7x at 40x64 and ~2.3x at 80x128. The 20x32 grid is too
// small to amortize the hierarchy and runs ~15% behind single-level — the
// crossover sits between 20x32 and 40x64, and `catsim bench`'s
// SolveMultigrid_20x32 entry tracks it per PR.
func BenchmarkSolveMultigrid(b *testing.B) {
	for _, sz := range benchSizes {
		b.Run(fmt.Sprintf("%dx%d", sz[0], sz[1]), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchSolveViscous(b, sz[0], sz[1], "implicit", &SequenceOptions{Levels: 3})
			}
		})
	}
}

// BenchmarkSolveSlender runs the high-aspect-ratio slender case under both
// implicit sweep schedules. The steps/op metric is the headline: wall-normal
// lines alone stall against the streamwise coupling and ride the step cap,
// while the alternating-direction schedule converges outright.
func BenchmarkSolveSlender(b *testing.B) {
	for _, sweep := range []string{ImplicitSweepJLine, ImplicitSweepADI} {
		b.Run(sweep, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g, o, err := ReferenceSlenderCase(64, 12, sweep)
				if err != nil {
					b.Fatal(err)
				}
				steps := 0
				o.Progress = func(phase string, step, maxSteps int, residual float64, diag Diag) { steps++ }
				s, err := New(g, o)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := s.Run(2000, 5e-4); err != nil {
					b.Fatal(err)
				}
				s.Close()
				b.ReportMetric(float64(steps), "steps/op")
			}
		})
	}
}

// BenchmarkSolveVCycle converges the 40x64 case with FAS V-cycles
// (line-implicit smoother) instead of the cascade.
func BenchmarkSolveVCycle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSolveViscous(b, 40, 64, "implicit", &SequenceOptions{Levels: 3, Cycle: "v"})
	}
}

func benchSolveCase(b *testing.B) (*grid.Grid2D, Options) {
	b.Helper()
	body := geometry.NewSphere(1.0)
	g, err := grid.NewBlunt(body, body.MaxS(), 16, 24, func(s float64) float64 {
		return 0.35 + 0.35*s
	}, 1.3)
	if err != nil {
		b.Fatal(err)
	}
	g.Axisymmetric = true
	aInf := math.Sqrt(1.4 * 287.05 * 250)
	return g, Options{
		Gas:          gas.NewIdealAir(),
		FreestreamV:  [2]float64{6 * aInf, 0},
		FreestreamPT: [2]float64{100, 250},
		CFL:          0.6,
		MUSCL:        true,
	}
}

// BenchmarkSolveFineOnly converges the M=6 sphere on the fine grid from
// freestream — the baseline a grid-sequenced solve has to beat.
func BenchmarkSolveFineOnly(b *testing.B) {
	g, o := benchSolveCase(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := New(g, o)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(6000, 1e-3); err != nil {
			b.Fatal(err)
		}
		s.Close()
	}
}

// BenchmarkSolveSequenced converges the same case coarse-first: the coarse
// stage establishes the shock cheaply, and the fine stage finishes to the
// same absolute residual a freestream-started fine solve reaches at the
// 1e-3 drop.
func BenchmarkSolveSequenced(b *testing.B) {
	g, o := benchSolveCase(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, _, err := SolveSequenced(context.Background(), g, o, 6000, 1e-3, SequenceOptions{})
		if err != nil {
			b.Fatal(err)
		}
		s.Close()
	}
}
