package cataero

import (
	"cataero/internal/gas"
	"cataero/internal/ns"
	"cataero/internal/transport"
)

// nsEquilibriumTransport builds high-temperature viscosity/conductivity
// closures for the Fig. 9 NS solve.
func nsEquilibriumTransport(eqm *gas.Equilibrium, tr *transport.Mixture) (mu, k func(T float64) float64, err error) {
	return ns.EquilibriumTransport(eqm, tr, 0.3)
}

// nsSolve runs the hemisphere NS case of Fig. 9.
func nsSolve(model gas.Model, mu, k func(T float64) float64, ni, nj, steps int, vInf, pInf, tInf float64) (*ns.Result, error) {
	return ns.Solve(ns.Case{
		Gas: model, Rn: 0.3,
		NI: ni, NJ: nj,
		VInf: vInf, PInf: pInf, TInf: tInf,
		TWall: 1500, MaxSteps: steps,
		Mu: mu, K: k,
	})
}
