package cataero

import (
	"encoding/json"
	"sort"
	"strings"
	"testing"

	"cataero/internal/fvm"
	"cataero/internal/thermo"
)

// goldenKeys pin the canonical content keys of the checked-in case files.
// These keys address ledger entries on disk: a change here is a cache-busting
// format change and should be deliberate (and called out in CHANGES.md), not
// incidental fallout of a refactor.
var goldenKeys = map[string]string{
	"examples/casefile/case.json":    "c7c9f726be871ea5b4be1dc2bd6f49a30e9704f03a7c05020824b6285a964123",
	"cmd/catsim/testdata/smoke.json": "1cc9b7529db52a2941bad6511fc12dbd84921717577c73d19063dedb4466e5b9",
	// bench.json re-keyed in 0.9.0: an implicit-stepping case now spells out
	// its default implicit_sweep in the canonical form.
	"cmd/catsim/testdata/bench.json": "d7068fb140c7d5242871661f852bf46c03a3b1f53fc4bbf7c8b38a93a827b537",
}

func TestCaseKeyGolden(t *testing.T) {
	for path, want := range goldenKeys {
		p, err := LoadCase(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		key, err := CaseKey(p)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if key != want {
			t.Errorf("%s: key %s, want %s (a deliberate canonical-format change must update goldenKeys)", path, key, want)
		}
	}
}

// keyOf is the must-variant of CaseKey for tests.
func keyOf(t *testing.T, p Problem) string {
	t.Helper()
	key, err := CaseKey(p)
	if err != nil {
		t.Fatal(err)
	}
	return key
}

// hashProblem is the reference case the key-equivalence tests perturb.
func hashProblem() Problem {
	return Problem{
		Class:     EBL,
		Chemistry: EquilibriumAir,
		PInf:      4.8, TInf: 217, VInf: 6740,
		NoseRadius: 0.6, TWall: 1200,
		NStations: 14,
	}
}

// TestCaseKeyIgnoresLabel: the report label never affects the solve, so it
// never affects the key.
func TestCaseKeyIgnoresLabel(t *testing.T) {
	p := hashProblem()
	base := keyOf(t, p)
	p.Name = "a descriptive label"
	if keyOf(t, p) != base {
		t.Fatal("Name changed the content key")
	}
	p.Monitor = MonitorFunc(func(Progress) {})
	if keyOf(t, p) != base {
		t.Fatal("Monitor changed the content key")
	}
}

// TestCaseKeyFieldOrderInvariant: every top-level permutation of the case
// JSON hashes identically. Permutations are exercised by rebuilding the
// document with its keys reversed and rotated — orders a hand-written case
// file could plausibly use.
func TestCaseKeyFieldOrderInvariant(t *testing.T) {
	p, err := LoadCase("cmd/catsim/testdata/smoke.json")
	if err != nil {
		t.Fatal(err)
	}
	base := keyOf(t, p)

	spec, err := CanonicalSpec(p)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var fields map[string]json.RawMessage
	if err := json.Unmarshal(doc, &fields); err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 0, len(fields))
	for k := range fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	reorder := func(perm []string) string {
		var b strings.Builder
		b.WriteByte('{')
		for i, k := range perm {
			if i > 0 {
				b.WriteByte(',')
			}
			kb, _ := json.Marshal(k)
			b.Write(kb)
			b.WriteByte(':')
			b.Write(fields[k])
		}
		b.WriteByte('}')
		return b.String()
	}

	perms := [][]string{}
	rev := make([]string, len(keys))
	for i, k := range keys {
		rev[len(keys)-1-i] = k
	}
	perms = append(perms, rev)
	for shift := 1; shift < len(keys); shift += 3 {
		rot := append(append([]string{}, keys[shift:]...), keys[:shift]...)
		perms = append(perms, rot)
	}

	for i, perm := range perms {
		var q Problem
		if err := json.Unmarshal([]byte(reorder(perm)), &q); err != nil {
			t.Fatalf("perm %d: %v", i, err)
		}
		if got := keyOf(t, q); got != base {
			t.Fatalf("perm %d: key %s, want %s\ndoc: %s", i, got, base, reorder(perm))
		}
	}
}

// TestCaseKeyExplicitDefaultsCollide: a spec that spells out every default a
// solve would fill hashes identically to the minimal spec that omits them.
func TestCaseKeyExplicitDefaultsCollide(t *testing.T) {
	minimal := Problem{
		Class: NS,
		PInf:  5474.9, TInf: 216.65, VInf: 1770.4,
		NoseRadius: 0.3,
		NI:         8, NJ: 14, MaxSteps: 120,
	}
	explicit := minimal
	explicit.Chemistry = IdealGas
	explicit.TWall = 1200
	explicit.Gamma = thermo.GammaAir
	explicit.Flux = fvm.DefaultFlux
	explicit.TimeStepping = fvm.DefaultTimeStepping
	explicit.Limiter = fvm.DefaultLimiter

	if keyOf(t, minimal) != keyOf(t, explicit) {
		t.Fatal("explicitly spelled defaults changed the content key")
	}
}

// TestCaseKeyCycleDefault: the multilevel cycle participates in the key only
// when a sequenced solve would consult it.
func TestCaseKeyCycleDefault(t *testing.T) {
	p := hashProblem()
	p.Class = NS
	p.NI, p.NJ, p.MaxSteps = 8, 14, 120
	p.Levels = 2
	implicitCycle := keyOf(t, p)
	p.Cycle = fvm.DefaultCycle
	if keyOf(t, p) != implicitCycle {
		t.Fatal("default cycle spelled out changed the key of a multilevel case")
	}
}

// TestCaseKeyImplicitSweepDefault: the sweep pattern participates in the key
// only when the implicit integrator would consult it.
func TestCaseKeyImplicitSweepDefault(t *testing.T) {
	p := hashProblem()
	p.Class = NS
	p.NI, p.NJ, p.MaxSteps = 8, 14, 120
	p.TimeStepping = fvm.TimeSteppingImplicit
	implied := keyOf(t, p)
	p.ImplicitSweep = fvm.DefaultImplicitSweep
	if keyOf(t, p) != implied {
		t.Fatal("default sweep spelled out changed the key of an implicit case")
	}
	p.ImplicitSweep = fvm.ImplicitSweepADI
	if keyOf(t, p) == implied {
		t.Fatal("adi sweep did not change the content key")
	}
}

// TestCaseKeySeparatesPhysicsAndNumerics: anything that changes the solve
// changes the key.
func TestCaseKeySeparatesPhysicsAndNumerics(t *testing.T) {
	base := keyOf(t, hashProblem())
	perturb := []func(*Problem){
		func(p *Problem) { p.VInf += 100 },
		func(p *Problem) { p.TWall = 900 },
		func(p *Problem) { p.Chemistry = IdealGas },
		func(p *Problem) { p.NStations = 30 },
		func(p *Problem) { p.Limiter = fvm.LimiterVanAlbada },
	}
	for i, mutate := range perturb {
		p := hashProblem()
		mutate(&p)
		if keyOf(t, p) == base {
			t.Errorf("perturbation %d did not change the content key", i)
		}
	}
}

// TestCanonicalJSONIsSortedAndStable: the canonical encoding is
// deterministic and key-sorted at the top level.
func TestCanonicalJSONIsSortedAndStable(t *testing.T) {
	p := hashProblem()
	a, err := CanonicalJSON(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CanonicalJSON(p)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("canonical JSON not deterministic")
	}
	dec := json.NewDecoder(strings.NewReader(string(a)))
	if _, err := dec.Token(); err != nil { // opening brace
		t.Fatal(err)
	}
	var names []string
	for dec.More() {
		tok, err := dec.Token()
		if err != nil {
			t.Fatal(err)
		}
		name, ok := tok.(string)
		if !ok {
			t.Fatalf("unexpected token %v in canonical JSON", tok)
		}
		names = append(names, name)
		var skip json.RawMessage
		if err := dec.Decode(&skip); err != nil {
			t.Fatal(err)
		}
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("canonical JSON keys not sorted: %v", names)
	}
}
