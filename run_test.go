package cataero

import (
	"context"
	"errors"
	"math"
	"runtime"
	"testing"
	"time"
)

// A fast ideal-gas NS case: no EOS table to build, converges in well under
// a second.
func fastNSProblem() Problem {
	return Problem{
		Class:     NS,
		Chemistry: IdealGas,
		PInf:      5474.9, TInf: 216.65,
		VInf:       6 * math.Sqrt(1.4*287.05*216.65),
		NoseRadius: 0.3, TWall: 600,
		NI: 8, NJ: 14, MaxSteps: 120,
	}
}

// A long-running ideal-gas NS case for cancellation tests: the step budget
// is far beyond anything these tests let finish.
func longNSProblem() Problem {
	p := fastNSProblem()
	p.NI, p.NJ = 12, 20
	p.MaxSteps = 5_000_000
	return p
}

// waitState polls until the run reaches the state or the deadline passes.
func waitState(t *testing.T, snap func() Snapshot, want RunState) Snapshot {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if s := snap(); s.State == want {
			return s
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("run never reached state %v", want)
	return Snapshot{}
}

// The acceptance path: a submitted NS run exposes live snapshots with
// monotonically increasing step counts and finishes with a residual.
func TestSubmitLiveSnapshots(t *testing.T) {
	if testing.Short() {
		t.Skip("NS solve in short mode")
	}
	s := NewSession()
	run := s.Submit(context.Background(), fastNSProblem())

	var seen []Snapshot
	for snap := range run.Watch() {
		seen = append(seen, snap)
	}
	env, err := run.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if env == nil || env.QConvStag <= 0 {
		t.Fatal("no environment from the run")
	}
	if len(seen) < 2 {
		t.Fatalf("only %d snapshots observed", len(seen))
	}
	// The watcher has latest-value semantics, so on a fast solve the
	// intermediate stepping snapshots may all be replaced before this
	// goroutine drains them — but every solver-stamped snapshot (including
	// the terminal one, which always arrives) carries the live step count.
	lastStep := 0
	for _, snap := range seen {
		if snap.Solver != "" {
			if snap.Solver != "ns" || snap.Phase != "solve" {
				t.Fatalf("unexpected solver/phase %q/%q", snap.Solver, snap.Phase)
			}
			if snap.Step < lastStep {
				t.Fatalf("step count went backwards: %d after %d", snap.Step, lastStep)
			}
			lastStep = snap.Step
		}
	}
	if lastStep == 0 {
		t.Fatal("no stepping snapshots observed")
	}
	final := seen[len(seen)-1]
	if final.State != RunDone || final.Err != nil {
		t.Fatalf("terminal snapshot %+v", final)
	}
	if final.Residual <= 0 || math.IsNaN(final.Residual) {
		t.Fatalf("no final residual in terminal snapshot: %g", final.Residual)
	}
	if final.Elapsed <= 0 {
		t.Fatal("no elapsed time in terminal snapshot")
	}
	// The handle agrees with the watch stream after completion.
	if snap := run.Snapshot(); snap.State != RunDone || snap.Residual != final.Residual {
		t.Fatalf("Snapshot() after completion: %+v", snap)
	}
	// Watch on a finished run yields exactly the terminal snapshot.
	var tail []Snapshot
	for snap := range run.Watch() {
		tail = append(tail, snap)
	}
	if len(tail) != 1 || tail[0].State != RunDone {
		t.Fatalf("late Watch saw %+v", tail)
	}
}

// Run snapshots retain a bounded residual history that services can plot
// without installing a Monitor: chronological, capped at HistoryDepth, and
// present in the terminal snapshot.
func TestSnapshotResidualHistory(t *testing.T) {
	if testing.Short() {
		t.Skip("NS solve in short mode")
	}
	s := NewSession()
	run := s.Submit(context.Background(), fastNSProblem())
	if _, err := run.Wait(); err != nil {
		t.Fatal(err)
	}
	hist := run.Snapshot().History()
	if len(hist) == 0 {
		t.Fatal("no residual history retained")
	}
	if len(hist) > HistoryDepth {
		t.Fatalf("history length %d exceeds cap %d", len(hist), HistoryDepth)
	}
	// fastNSProblem runs 120 steps, so the ring must have wrapped and kept
	// the most recent window, in chronological order.
	if len(hist) != HistoryDepth {
		t.Fatalf("expected a full ring after 120 steps, got %d", len(hist))
	}
	for k := 1; k < len(hist); k++ {
		if hist[k].Step <= hist[k-1].Step {
			t.Fatalf("history out of order at %d: step %d after %d", k, hist[k].Step, hist[k-1].Step)
		}
		if hist[k].Residual <= 0 {
			t.Fatalf("non-positive residual retained at %d", k)
		}
	}
	if last := hist[len(hist)-1]; last.Step != 120 {
		t.Errorf("history should end at the final step: got %d", last.Step)
	}
}

// A grid-sequenced run restarts its step counter at the coarse→fine phase
// switch; the history window must restart with it so steps stay monotone
// and the trend stays comparable.
func TestSnapshotHistoryAcrossPhases(t *testing.T) {
	if testing.Short() {
		t.Skip("NS solve in short mode")
	}
	s := NewSession()
	p := fastNSProblem()
	p.GridSequencing = ToggleOn
	phases := map[string]bool{}
	p.Monitor = MonitorFunc(func(pr Progress) { phases[pr.Phase] = true })
	run := s.Submit(context.Background(), p)
	if _, err := run.Wait(); err != nil {
		t.Fatal(err)
	}
	if !phases["coarse"] || !phases["fine"] {
		t.Fatalf("sequenced solve did not report both phases: %v", phases)
	}
	hist := run.Snapshot().History()
	if len(hist) == 0 {
		t.Fatal("no residual history retained")
	}
	for k := 1; k < len(hist); k++ {
		if hist[k].Step <= hist[k-1].Step {
			t.Fatalf("history folded back at %d: step %d after %d (phase switch did not restart the window)",
				k, hist[k].Step, hist[k-1].Step)
		}
	}
}

// The problem's own Monitor still sees progress alongside the run handle.
func TestSubmitForwardsToProblemMonitor(t *testing.T) {
	if testing.Short() {
		t.Skip("NS solve in short mode")
	}
	s := NewSession()
	hits := make(chan Progress, 1024)
	p := fastNSProblem()
	p.Monitor = MonitorFunc(func(pr Progress) {
		select {
		case hits <- pr:
		default:
		}
	})
	if _, err := s.Submit(context.Background(), p).Wait(); err != nil {
		t.Fatal(err)
	}
	close(hits)
	n := 0
	for pr := range hits {
		if pr.Solver != "ns" {
			t.Fatalf("unexpected solver %q", pr.Solver)
		}
		n++
	}
	if n == 0 {
		t.Fatal("problem monitor never called")
	}
}

// Run.Cancel aborts a running solve promptly and releases the slot for the
// next solve.
func TestRunCancelPrompt(t *testing.T) {
	if testing.Short() {
		t.Skip("NS solve in short mode")
	}
	s := NewSession(WithWorkers(1))
	run := s.Submit(context.Background(), longNSProblem())
	waitState(t, run.Snapshot, RunRunning)
	start := time.Now()
	run.Cancel()
	env, err := run.Wait()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if env != nil {
		t.Fatal("canceled run returned an environment")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("Wait took %v after Cancel", elapsed)
	}
	// The slot freed: a follow-up solve on the same 1-wide session runs.
	if _, err := s.Solve(context.Background(), fastNSProblem()); err != nil {
		t.Fatalf("solve after canceled run: %v", err)
	}
}

// Canceling mid-batch: finished runs keep their results, the running and
// queued runs carry ctx.Err(), and Wait returns promptly.
func TestBatchCancellationSemantics(t *testing.T) {
	if testing.Short() {
		t.Skip("NS solves in short mode")
	}
	s := NewSession(WithWorkers(1))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// First: a fast run, completed before anything else is submitted so the
	// 1-wide session leaves it untouched by the cancellation.
	r0 := s.Submit(ctx, fastNSProblem())
	env0, err0 := r0.Wait()
	if err0 != nil || env0 == nil {
		t.Fatalf("fast run failed: %v", err0)
	}

	// Then a long run (occupies the slot) and a queued one behind it.
	r1 := s.Submit(ctx, longNSProblem())
	waitState(t, r1.Snapshot, RunRunning)
	r2 := s.Submit(ctx, longNSProblem())
	if st := r2.Snapshot().State; st != RunQueued {
		t.Fatalf("second run state %v, want queued", st)
	}

	start := time.Now()
	cancel()
	if _, err := r1.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("running run err = %v, want context.Canceled", err)
	}
	if _, err := r2.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("queued run err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation drained in %v", elapsed)
	}
	// The finished run keeps its result.
	if env, err := r0.Wait(); err != nil || env == nil || env.QConvStag != env0.QConvStag {
		t.Fatalf("finished run lost its result: %v %v", env, err)
	}
	if snap := r2.Snapshot(); snap.State != RunDone || !errors.Is(snap.Err, context.Canceled) {
		t.Fatalf("queued run terminal snapshot %+v", snap)
	}
}

// The shared session pool keeps total goroutines bounded under a wide
// NS batch: one resident fvm worker pool serves every solve instead of a
// private NumCPU-wide pool per solver.
func TestSharedPoolBoundsGoroutines(t *testing.T) {
	if testing.Short() {
		t.Skip("NS batch in short mode")
	}
	const n = 12
	workers := 4
	base := runtime.NumGoroutine()
	s := NewSession(WithWorkers(workers))
	probs := make([]Problem, n)
	for i := range probs {
		p := fastNSProblem()
		p.NI, p.NJ = 10, 16
		p.MaxSteps = 1500
		probs[i] = p
	}
	done := make(chan struct{})
	var results []Result
	var batchErr error
	go func() {
		defer close(done)
		results, batchErr = s.SolveBatch(context.Background(), probs)
	}()
	peak := 0
	for {
		select {
		case <-done:
		default:
			if g := runtime.NumGoroutine(); g > peak {
				peak = g
			}
			time.Sleep(2 * time.Millisecond)
			continue
		}
		break
	}
	if batchErr != nil {
		t.Fatal(batchErr)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("problem %d: %v", i, r.Err)
		}
	}
	// Budget: one goroutine per submitted run (n), the shared fvm pool
	// (GOMAXPROCS-1), the batch driver and slack. The old per-solver pools
	// would add ~workers*(NumCPU-1) on top.
	budget := base + n + runtime.GOMAXPROCS(0) + 8
	if peak > budget {
		t.Fatalf("peak goroutines %d exceeds budget %d (base %d)", peak, budget, base)
	}
}

// A case file round-trips: the loaded problem produces the same
// environment as the in-code problem it was written from.
func TestCaseFileRoundTripSameEnvironment(t *testing.T) {
	if testing.Short() {
		t.Skip("NS solves in short mode")
	}
	p := fastNSProblem()
	path := t.TempDir() + "/case.json"
	if err := SaveCase(path, p); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCase(path)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession()
	ctx := context.Background()
	envA, err := s.Solve(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	envB, err := s.Solve(ctx, loaded)
	if err != nil {
		t.Fatal(err)
	}
	if envA.QConvStag != envB.QConvStag || envA.Standoff != envB.Standoff {
		t.Fatalf("environments differ: q %g vs %g, standoff %g vs %g",
			envA.QConvStag, envB.QConvStag, envA.Standoff, envB.Standoff)
	}
	if len(envA.Surface) != len(envB.Surface) {
		t.Fatalf("surface stations differ: %d vs %d", len(envA.Surface), len(envB.Surface))
	}
	for i := range envA.Surface {
		if envA.Surface[i] != envB.Surface[i] {
			t.Fatalf("surface station %d differs", i)
		}
	}
}

func TestLoadCaseErrors(t *testing.T) {
	if _, err := LoadCase("testdata/definitely-missing.json"); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := ParseCase([]byte(`{"class":"nope"}`)); err == nil {
		t.Error("unknown class accepted")
	}
}

// A problem can force grid sequencing off on a session that enables it by
// default — the tri-state toggle satellite.
func TestGridSequencingOptOut(t *testing.T) {
	s := NewSession(WithGridSequencing(true))
	// Unset defers to the session: sequencing on.
	if got := s.apply(Problem{}).GridSequencing; got != ToggleOn {
		t.Fatalf("unset toggle resolved to %v, want on", got)
	}
	// An explicit off survives the session default.
	if got := s.apply(Problem{GridSequencing: ToggleOff}).GridSequencing; got != ToggleOff {
		t.Fatalf("explicit off overridden: %v", got)
	}
	// And an explicit on on a plain session stays on.
	if got := NewSession().apply(Problem{GridSequencing: ToggleOn}).GridSequencing; got != ToggleOn {
		t.Fatalf("explicit on lost: %v", got)
	}
}

// Behavioral check via monitor phases: ToggleOff on a sequencing session
// must solve in a single "solve" phase; the session default must sequence
// through "coarse" then "fine".
func TestGridSequencingOptOutPhases(t *testing.T) {
	if testing.Short() {
		t.Skip("NS solves in short mode")
	}
	// Watch drops intermediate snapshots (latest-value semantics), so use a
	// problem Monitor, which sees every report.
	phasesOf := func(p Problem) map[string]bool {
		s := NewSession(WithGridSequencing(true))
		seen := map[string]bool{}
		p.Monitor = MonitorFunc(func(pr Progress) { seen[pr.Phase] = true })
		if _, err := s.Submit(context.Background(), p).Wait(); err != nil {
			t.Fatal(err)
		}
		return seen
	}
	seq := phasesOf(fastNSProblem())
	if !seq["coarse"] || !seq["fine"] || seq["solve"] {
		t.Fatalf("sequenced phases %v, want coarse+fine", seq)
	}
	p := fastNSProblem()
	p.GridSequencing = ToggleOff
	plain := phasesOf(p)
	if plain["coarse"] || plain["fine"] || !plain["solve"] {
		t.Fatalf("opt-out phases %v, want solve only", plain)
	}
}

// A zero-value Session still solves (the pre-Run API allowed it): the
// admission width is adopted lazily and the nil stack falls back to the
// core default.
func TestZeroValueSessionSolves(t *testing.T) {
	if testing.Short() {
		t.Skip("NS solve in short mode")
	}
	var s Session
	env, err := s.Solve(context.Background(), fastNSProblem())
	if err != nil {
		t.Fatal(err)
	}
	if env.QConvStag <= 0 {
		t.Fatal("no heating from zero-value session")
	}
}

func TestFluxKernelsExported(t *testing.T) {
	ks := FluxKernels()
	if len(ks) < 3 {
		t.Fatalf("kernels %v", ks)
	}
	want := map[string]bool{"hlle": true, "hllc": true, "ausm+": true}
	for _, k := range ks {
		delete(want, k)
	}
	if len(want) != 0 {
		t.Fatalf("missing kernels %v in %v", want, ks)
	}
}

// SubmitShock exposes the same run semantics for bow-shock solves.
func TestSubmitShock(t *testing.T) {
	if testing.Short() {
		t.Skip("Euler solve in short mode")
	}
	s := NewSession()
	p := Problem{
		Chemistry: IdealGas,
		PInf:      10.9, TInf: 233, VInf: 6700,
		NoseRadius: 1.0, NI: 10, NJ: 16, MaxSteps: 600,
	}
	run := s.SubmitShock(context.Background(), p)
	env, err := run.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(env.X) == 0 || env.Standoff <= 0 {
		t.Fatalf("empty envelope: %+v", env)
	}
	snap := run.Snapshot()
	if snap.State != RunDone || snap.Solver != "euler" || snap.Step == 0 {
		t.Fatalf("terminal shock snapshot %+v", snap)
	}
}
