package cataero

import (
	"context"
	"errors"
	"math"
	"runtime"
	"testing"
	"time"
)

// A Shuttle-like entry point used across the session tests.
func sessionProblem(class SolverClass) Problem {
	return Problem{
		Class:     class,
		Chemistry: EquilibriumAir,
		PInf:      4.8, TInf: 217, VInf: 6740,
		NoseRadius: 0.6, TWall: 1200,
		NStations: 14,
	}
}

// A small NS case (coarse grid, few steps) for cache and bench tests.
func smallNSProblem() Problem {
	return Problem{
		Class:     NS,
		Chemistry: EquilibriumAir,
		PInf:      5474.9, TInf: 216.65,
		VInf:       20 * math.Sqrt(1.4*287.05*216.65),
		NoseRadius: 0.3, TWall: 1500,
		NI: 8, NJ: 14, MaxSteps: 120,
	}
}

func TestSessionOptionDefaults(t *testing.T) {
	s := NewSession()
	if s.workers != runtime.GOMAXPROCS(0) {
		t.Errorf("default workers %d, want GOMAXPROCS %d", s.workers, runtime.GOMAXPROCS(0))
	}
	if s.quality != 1 {
		t.Errorf("default quality %d", s.quality)
	}
	if s.chem != ChemistryUnset {
		t.Errorf("default chemistry %v", s.chem)
	}
	if s.gamma != 0 {
		t.Errorf("default gamma %g", s.gamma)
	}
}

func TestSessionOptionApplication(t *testing.T) {
	s := NewSession(
		WithChemistry(EquilibriumTitan),
		WithQuality(2),
		WithWorkers(3),
		WithGamma(1.2),
	)
	if s.workers != 3 || s.quality != 2 || s.chem != EquilibriumTitan || s.gamma != 1.2 {
		t.Fatalf("options not applied: %+v", s)
	}
	// Invalid values are ignored, not stored.
	s2 := NewSession(WithWorkers(-1), WithGamma(0.5))
	if s2.workers != runtime.GOMAXPROCS(0) || s2.gamma != 0 {
		t.Errorf("invalid option values should be ignored: workers=%d gamma=%g", s2.workers, s2.gamma)
	}

	// The session chemistry stamps problems that leave Chemistry unset but
	// does not override an explicit choice; quality fills unset grids only.
	p := s.apply(Problem{Class: VSL})
	if p.Chemistry != EquilibriumTitan {
		t.Errorf("unset chemistry not defaulted: %v", p.Chemistry)
	}
	if p.NStations != 30 || p.NI != 24 || p.NJ != 40 || p.MaxSteps != 6000 {
		t.Errorf("quality 2 grid defaults not applied: %+v", p)
	}
	p = s.apply(Problem{Chemistry: EquilibriumAir, NStations: 5, NI: 6, NJ: 7, MaxSteps: 8, Gamma: 1.4})
	if p.Chemistry != EquilibriumAir || p.NStations != 5 || p.NI != 6 || p.NJ != 7 || p.MaxSteps != 8 || p.Gamma != 1.4 {
		t.Errorf("explicit problem fields overridden: %+v", p)
	}
}

func TestSessionSolveDefaultChemistry(t *testing.T) {
	// VSL demands equilibrium chemistry: without a session default the
	// unset chemistry resolves to ideal gas and fails...
	p := sessionProblem(VSL)
	p.Chemistry = ChemistryUnset
	if _, err := NewSession().Solve(context.Background(), p); err == nil {
		t.Fatal("VSL with ideal-gas default should fail")
	}
	// ...and with WithChemistry it succeeds.
	s := NewSession(WithChemistry(EquilibriumAir))
	env, err := s.Solve(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if env.QConvStag <= 0 {
		t.Error("no stagnation heating")
	}
}

func TestSessionTableBuiltOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("NS solves in short mode")
	}
	s := NewSession()
	for i := 0; i < 2; i++ {
		if _, err := s.Solve(context.Background(), smallNSProblem()); err != nil {
			t.Fatal(err)
		}
	}
	if n := s.stack.TableBuilds(); n != 1 {
		t.Fatalf("repeated NS solves built the EOS table %d times, want 1", n)
	}
	// A fresh session has its own (empty) cache.
	s2 := NewSession()
	if n := s2.stack.TableBuilds(); n != 0 {
		t.Fatalf("fresh session stack has %d table builds", n)
	}
}

func TestSolveBatchPartialFailure(t *testing.T) {
	s := NewSession(WithWorkers(2))
	probs := []Problem{
		sessionProblem(VSL),
		{Class: VSL}, // no freestream: must fail without aborting the batch
		sessionProblem(PNS),
	}
	results, err := s.SolveBatch(context.Background(), probs)
	if err != nil {
		t.Fatalf("batch error %v, want per-problem failures only", err)
	}
	if len(results) != len(probs) {
		t.Fatalf("results %d", len(results))
	}
	if results[0].Err != nil || results[0].Env == nil || results[0].Env.QConvStag <= 0 {
		t.Errorf("problem 0 should succeed: %+v", results[0].Err)
	}
	if results[1].Err == nil {
		t.Error("problem 1 should fail")
	}
	if results[2].Err != nil || results[2].Env == nil {
		t.Errorf("problem 2 should succeed: %+v", results[2].Err)
	}
	for i, r := range results {
		if r.Index != i {
			t.Errorf("result %d has index %d", i, r.Index)
		}
	}
}

func TestSolveBatchContextCancellation(t *testing.T) {
	s := NewSession(WithWorkers(1))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	probs := []Problem{sessionProblem(VSL), sessionProblem(EBL)}
	results, err := s.SolveBatch(ctx, probs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("batch err = %v, want context.Canceled", err)
	}
	for i, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("result %d err = %v, want context.Canceled", i, r.Err)
		}
	}
}

func TestSessionSolveTimeout(t *testing.T) {
	if testing.Short() {
		t.Skip("timed solve in short mode")
	}
	// A deadline that expires mid-iteration must abort the solver loop with
	// the context's error, not run to completion.
	s := NewSession()
	p := smallNSProblem()
	p.MaxSteps = 100000
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := s.Solve(ctx, p)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("cancellation took %v", elapsed)
	}
}

func TestSessionShockShape(t *testing.T) {
	if testing.Short() {
		t.Skip("Euler solves in short mode")
	}
	s := NewSession()
	base := Problem{
		PInf: 10.9, TInf: 233, VInf: 6700,
		NoseRadius: 1.0, NI: 14, NJ: 24, MaxSteps: 2200,
	}
	pI, pE := base, base
	pI.Chemistry = IdealGas
	pE.Chemistry = EquilibriumAir
	results, err := s.ShockShapeBatch(context.Background(), []Problem{pI, pE})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("run %d: %v", i, r.Err)
		}
		if len(r.Env.X) == 0 || len(r.Env.BodyX) == 0 {
			t.Fatalf("run %d: empty envelope", i)
		}
	}
	if dE, dI := results[1].Env.Standoff, results[0].Env.Standoff; dE >= dI {
		t.Errorf("reacting standoff %g should be below ideal %g", dE, dI)
	}
}

func TestSessionFluxAndSequencingOptions(t *testing.T) {
	s := NewSession(WithFlux("hllc"), WithGridSequencing(true))
	p := s.apply(smallNSProblem())
	if p.Flux != "hllc" || p.GridSequencing != ToggleOn {
		t.Fatalf("options not stamped: flux=%q seq=%v", p.Flux, p.GridSequencing)
	}
	// A problem-level kernel wins over the session default.
	q := smallNSProblem()
	q.Flux = "ausm+"
	if got := s.apply(q).Flux; got != "ausm+" {
		t.Fatalf("problem flux overridden: %q", got)
	}
	env, err := s.Solve(context.Background(), smallNSProblem())
	if err != nil {
		t.Fatal(err)
	}
	if env.QConvStag <= 0 {
		t.Fatal("no NS wall heating from the HLLC grid-sequenced solve")
	}
}

func TestSessionUnknownFluxFails(t *testing.T) {
	s := NewSession(WithFlux("upwind-o-matic"))
	if _, err := s.Solve(context.Background(), smallNSProblem()); err == nil {
		t.Fatal("unknown flux kernel accepted")
	}
}

func TestSessionTimeSteppingOption(t *testing.T) {
	s := NewSession(WithTimeStepping("implicit"))
	if p := s.apply(smallNSProblem()); p.TimeStepping != "implicit" {
		t.Fatalf("WithTimeStepping not stamped: %q", p.TimeStepping)
	}
	// A problem-level integrator wins over the session default.
	q := smallNSProblem()
	q.TimeStepping = "explicit"
	if got := s.apply(q).TimeStepping; got != "explicit" {
		t.Fatalf("problem time stepping overridden: %q", got)
	}
	env, err := s.Solve(context.Background(), smallNSProblem())
	if err != nil {
		t.Fatal(err)
	}
	if env.QConvStag <= 0 {
		t.Fatal("no NS wall heating from the implicit solve")
	}
}

func TestSessionUnknownTimeSteppingFails(t *testing.T) {
	s := NewSession(WithTimeStepping("dual-time-o-matic"))
	if _, err := s.Solve(context.Background(), smallNSProblem()); err == nil {
		t.Fatal("unknown time integrator accepted")
	}
}

func TestTimeSteppingsList(t *testing.T) {
	names := TimeSteppings()
	found := map[string]bool{}
	for _, n := range names {
		found[n] = true
	}
	if !found["explicit"] || !found["implicit"] {
		t.Fatalf("TimeSteppings() = %v, want explicit and implicit", names)
	}
}

func TestSessionMultilevelOptions(t *testing.T) {
	s := NewSession(WithLevels(3), WithCycle("v"), WithLimiter("vanalbada"))
	p := s.apply(smallNSProblem())
	if p.Levels != 3 || p.Cycle != "v" || p.Limiter != "vanalbada" {
		t.Fatalf("multilevel options not stamped: levels=%d cycle=%q limiter=%q",
			p.Levels, p.Cycle, p.Limiter)
	}
	// Problem-level values win over the session defaults.
	q := smallNSProblem()
	q.Levels, q.Cycle, q.Limiter = 2, "cascade", "minmod"
	q = s.apply(q)
	if q.Levels != 2 || q.Cycle != "cascade" || q.Limiter != "minmod" {
		t.Fatalf("problem multilevel knobs overridden: levels=%d cycle=%q limiter=%q",
			q.Levels, q.Cycle, q.Limiter)
	}
}

func TestSessionUnknownCycleAndLimiterFail(t *testing.T) {
	if testing.Short() {
		t.Skip("NS solves in short mode")
	}
	if _, err := NewSession(WithCycle("w")).Solve(context.Background(), fastNSProblem()); err == nil {
		t.Error("unknown cycle accepted")
	}
	if _, err := NewSession(WithLimiter("superbee")).Solve(context.Background(), fastNSProblem()); err == nil {
		t.Error("unknown limiter accepted")
	}
}

// A session-level WithLevels turns the NS solve multilevel: the run reports
// per-level phases level0/level1 (the 8x14 grid reaches exactly two levels;
// deeper requests auto-drop), and ToggleOff still opts a problem out.
func TestMultilevelRunPhases(t *testing.T) {
	if testing.Short() {
		t.Skip("NS solves in short mode")
	}
	s := NewSession(WithLevels(3))
	seen := map[string]bool{}
	p := fastNSProblem()
	p.Monitor = MonitorFunc(func(pr Progress) { seen[pr.Phase] = true })
	if _, err := s.Submit(context.Background(), p).Wait(); err != nil {
		t.Fatal(err)
	}
	if !seen["level0"] || !seen["level1"] || seen["level2"] || seen["coarse"] || seen["solve"] {
		t.Fatalf("multilevel phases %v, want level0+level1", seen)
	}
	q := fastNSProblem()
	q.GridSequencing = ToggleOff
	seen = map[string]bool{}
	q.Monitor = MonitorFunc(func(pr Progress) { seen[pr.Phase] = true })
	if _, err := s.Submit(context.Background(), q).Wait(); err != nil {
		t.Fatal(err)
	}
	if seen["level0"] || !seen["solve"] {
		t.Fatalf("opted-out phases %v, want solve only", seen)
	}
}
