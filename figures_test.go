package cataero

import (
	"math"
	"testing"
)

// The root-package tests exercise the public API and the figure runners
// end to end; detailed physics tests live next to each internal package.

func TestPublicSolveVSL(t *testing.T) {
	env, err := Solve(Problem{
		Class:     VSL,
		Chemistry: EquilibriumAir,
		PInf:      4.8, TInf: 217, VInf: 6740,
		NoseRadius: 0.6, TWall: 1200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if env.QConvStag <= 0 {
		t.Error("no stagnation heating")
	}
}

func TestFig1Shape(t *testing.T) {
	r := Fig1FlightDomain()
	if len(r.Vehicles) != 4 {
		t.Fatalf("vehicles %d", len(r.Vehicles))
	}
	if r.GapFraction < 0.5 {
		t.Errorf("AOTV gap fraction %g should dominate", r.GapFraction)
	}
}

func TestFig3Shape(t *testing.T) {
	r, err := Fig3TitanSpeciesProfile()
	if err != nil {
		t.Fatal(err)
	}
	if r.Delta <= 0 || r.Delta > 0.3 {
		t.Errorf("standoff %g m implausible", r.Delta)
	}
	if len(r.Species["CN"]) != len(r.YOverDelta) {
		t.Error("species arrays mismatched")
	}
}

func TestFig5Shape(t *testing.T) {
	secs := Fig5OrbiterGeometry(0)
	if len(secs) != 30 {
		t.Fatalf("default sections %d", len(secs))
	}
	if secs[len(secs)-1].HalfWidth < 10 {
		t.Error("wing half-span missing")
	}
}

func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("relaxation integration in short mode")
	}
	r, err := Fig7ShockRelaxation()
	if err != nil {
		t.Fatal(err)
	}
	if r.TFrozen < 35000 {
		t.Errorf("frozen T %g", r.TFrozen)
	}
	last := len(r.X) - 1
	if math.Abs(r.T[last]-r.Tv[last]) > 0.25*r.T[last] {
		t.Error("temperatures failed to merge")
	}
}

func TestFig8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("spectra in short mode")
	}
	r, err := Fig8NoneqSpectra()
	if err != nil {
		t.Fatal(err)
	}
	// The N2+ first-negative region (390 nm) should be a strong feature.
	at := func(lnm float64) float64 {
		best, bd := 0.0, math.Inf(1)
		for i, l := range r.LambdaNm {
			if d := math.Abs(l - lnm); d < bd {
				bd, best = d, r.Computed[i]
			}
		}
		return best
	}
	if at(391.4) <= at(620)*2 {
		t.Errorf("N2+ band not prominent: %g vs %g", at(391.4), at(620))
	}
}
