package cataero

import (
	"context"
	"fmt"
	"math"

	"cataero/internal/atmosphere"
	"cataero/internal/blayer"
	"cataero/internal/chem"
	"cataero/internal/euler"
	"cataero/internal/freeflight"
	"cataero/internal/geometry"
	"cataero/internal/ns"
	"cataero/internal/radiation"
	"cataero/internal/shocktube"
	"cataero/internal/thermo"
	"cataero/internal/transport"
	"cataero/internal/vsl"
)

// Quality scales the figure-runner grids: 1 = bench/default, 2 = finer.
type Quality int

// Series is a generic labeled (x, y) series for figure output.
type Series struct {
	Label string
	X, Y  []float64
}

// --- Fig. 1: flight domain and simulation capability ---

// Fig1Result holds the flight-domain map.
type Fig1Result struct {
	Vehicles   []Series // X = Mach, Y = Reynolds
	Facilities []freeflight.Facility
	// GapFraction is the fraction of AOTV trajectory points no facility
	// covers (the paper's motivating simulation gap).
	GapFraction float64
}

// Fig1FlightDomain regenerates the paper's Fig. 1.
func Fig1FlightDomain() Fig1Result {
	var out Fig1Result
	fac := freeflight.StandardFacilities()
	out.Facilities = fac
	for _, v := range freeflight.StandardVehicles() {
		pts := freeflight.Domain(v)
		s := Series{Label: v.Name}
		uncovered := 0
		for _, p := range pts {
			s.X = append(s.X, p.Mach)
			s.Y = append(s.Y, p.Reynolds)
			if !freeflight.Covered(p, fac) {
				uncovered++
			}
		}
		if v.Name == "AOTV aeropass" {
			out.GapFraction = float64(uncovered) / float64(len(pts))
		}
		out.Vehicles = append(out.Vehicles, s)
	}
	return out
}

// --- Fig. 2: Titan probe heating pulses ---

// Fig2Result holds convective and radiative stagnation heating vs time.
type Fig2Result struct {
	Time        []float64 // s
	QConv, QRad []float64 // W/cm^2 (the paper's unit)
	PeakConv    float64
	PeakRad     float64
	TPeakConv   float64
	TPeakRad    float64
}

func titanVSLInputs() vsl.Inputs {
	m := thermo.NewMixture(thermo.TitanSpecies())
	return vsl.Inputs{
		Mix: m,
		Eq:  chem.NewEquilibriumSolver(m),
		Tr:  transport.NewMixture(m),
		Rad: radiation.NewTitanModel(m, 260),
		Y0:  thermo.TitanFreestreamMassFractions(m.Species),
		Rn:  1.25, TWall: 1800, NPts: 28,
	}
}

// Fig2TitanHeatingPulse regenerates the paper's Fig. 2 on the session's
// worker pool: a 12 km/s Titan probe entry, integrated as a trajectory and
// swept as one concurrent SolveBatch of stagnation-line VSL problems.
func (s *Session) Fig2TitanHeatingPulse(ctx context.Context) (*Fig2Result, error) {
	ti := atmosphere.NewTitan()
	veh := atmosphere.Vehicle{Mass: 2100, RefArea: 5.3, CD: 1.05, NoseRadius: 1.25}
	traj, err := atmosphere.IntegrateEntry(ti, veh, atmosphere.EntryConditions{
		Altitude: 600e3, Velocity: 12000, Gamma: -40 * math.Pi / 180,
	}, 2000, 2.0)
	if err != nil {
		return nil, err
	}
	// One VSL problem per trajectory point with non-negligible heating.
	var probs []Problem
	var times []float64
	for _, tp := range traj {
		if !vsl.SignificantHeating(tp) {
			continue
		}
		probs = append(probs, Problem{
			Class: VSL, Chemistry: EquilibriumTitan, Radiation: true,
			PInf: tp.Pressure, TInf: tp.Temp, VInf: tp.Velocity,
			NoseRadius: 1.25, TWall: 1800, NStations: 28,
		})
		times = append(times, tp.Time)
	}
	results, err := s.SolveBatch(ctx, probs)
	if err != nil {
		return nil, err
	}
	out := &Fig2Result{}
	for i, r := range results {
		if r.Err != nil {
			// Individual trajectory points may sit outside the equilibrium
			// solver's range right at the entry interface; skip them rather
			// than abort the pulse.
			continue
		}
		qc, qr := r.Env.QConvStag/1e4, r.Env.QRadStag/1e4 // W/m^2 -> W/cm^2
		out.Time = append(out.Time, times[i])
		out.QConv = append(out.QConv, qc)
		out.QRad = append(out.QRad, qr)
		if qc > out.PeakConv {
			out.PeakConv, out.TPeakConv = qc, times[i]
		}
		if qr > out.PeakRad {
			out.PeakRad, out.TPeakRad = qr, times[i]
		}
	}
	if len(out.Time) == 0 {
		return nil, fmt.Errorf("cataero: no valid heating points along trajectory")
	}
	return out, nil
}

// Fig2TitanHeatingPulse regenerates the paper's Fig. 2 on the shared
// default session.
func Fig2TitanHeatingPulse() (*Fig2Result, error) {
	return defaultSession().Fig2TitanHeatingPulse(context.Background())
}

// --- Fig. 3: Titan stagnation-line species profiles ---

// Fig3Result holds species mole fractions along the stagnation line.
type Fig3Result struct {
	YOverDelta []float64
	Species    map[string][]float64 // mole fractions per point
	Delta      float64              // shock standoff, m (the paper quotes 2.24 cm)
}

// Fig3TitanSpeciesProfile regenerates the paper's Fig. 3 at a peak-heating
// condition of the Fig. 2 entry (the denser, slightly decelerated point
// where the equilibrium layer keeps molecular N2 dominant near the wall).
func Fig3TitanSpeciesProfile() (*Fig3Result, error) {
	in := titanVSLInputs()
	in.PInf, in.TInf, in.VInf = 120.0, 165, 7500
	in.NPts = 40
	r, err := vsl.Solve(context.Background(), in)
	if err != nil {
		return nil, err
	}
	out := &Fig3Result{Delta: r.Standoff, Species: map[string][]float64{}}
	m := in.Mix
	for i, y := range r.Y {
		out.YOverDelta = append(out.YOverDelta, y/r.Standoff)
		x := m.MoleFractions(r.Species[i])
		for s, sp := range m.Species {
			out.Species[sp.Name] = append(out.Species[sp.Name], x[s])
		}
	}
	return out, nil
}

// --- Fig. 4: Orbiter pitch-plane shock shapes ---

// Fig4Result holds the bow-shock loci for reacting vs ideal gas.
type Fig4Result struct {
	IdealX, IdealY       []float64
	ReactingX, ReactingY []float64
	BodyX, BodyY         []float64
	StandoffIdeal        float64
	StandoffReacting     float64
}

// Fig4OrbiterShockShape regenerates the paper's Fig. 4 — V=6.7 km/s at
// 65.5 km, alpha=30 deg, planar pitch-plane model — as one concurrent
// ShockShapeBatch of the ideal and equilibrium-air runs.
func (s *Session) Fig4OrbiterShockShape(ctx context.Context, q Quality) (*Fig4Result, error) {
	earth := atmosphere.NewEarth()
	st := earth.AtAltitude(65.5e3)
	o := geometry.NewOrbiter()
	body := euler.OrbiterPitchPlaneBody(o, 30*math.Pi/180, 10)
	ni, nj, steps := 16, 26, 2600
	if q >= 2 {
		ni, nj, steps = 28, 40, 5000
	}
	base := Problem{
		Body: body, NI: ni, NJ: nj, MaxSteps: steps,
		VInf: 6700, PInf: st.Pressure, TInf: st.Temperature,
		Standoff: func(s float64) float64 { return 1.6*body.NoseRadius() + 0.45*s },
	}
	pI, pE := base, base
	pI.Chemistry = IdealGas
	pE.Chemistry = EquilibriumAir
	results, err := s.ShockShapeBatch(ctx, []Problem{pI, pE})
	if err != nil {
		return nil, err
	}
	for _, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("%s run: %w", r.Problem.Chemistry, r.Err)
		}
	}
	rI, rE := results[0].Env, results[1].Env
	return &Fig4Result{
		IdealX: rI.X, IdealY: rI.Y,
		ReactingX: rE.X, ReactingY: rE.Y,
		BodyX: rI.BodyX, BodyY: rI.BodyY,
		StandoffIdeal:    rI.Standoff,
		StandoffReacting: rE.Standoff,
	}, nil
}

// Fig4OrbiterShockShape regenerates the paper's Fig. 4 on the shared
// default session.
func Fig4OrbiterShockShape(q Quality) (*Fig4Result, error) {
	return defaultSession().Fig4OrbiterShockShape(context.Background(), q)
}

// --- Fig. 5: Orbiter geometry ---

// Fig5OrbiterGeometry returns the discretized Orbiter geometry used by the
// windward-plane analyses (the paper's Fig. 5).
func Fig5OrbiterGeometry(ns int) []geometry.OrbiterSection {
	if ns == 0 {
		ns = 30
	}
	return geometry.NewOrbiter().Sections(ns)
}

// --- Fig. 6: windward centerline heating ---

// Fig6Result holds the windward-centerline heating comparison.
type Fig6Result struct {
	XOverL            []float64
	QEquilibrium      []float64 // W/cm^2, fully catalytic equilibrium air
	QIdeal            []float64 // W/cm^2, gamma = 1.2 ideal gas
	FlightX, FlightQ  []float64 // synthetic "STS-3" points (finite catalysis)
	CatalysisFraction float64   // flight/equilibrium stagnation ratio
}

// Fig6WindwardHeating regenerates the paper's Fig. 6: STS-3 point
// (V=6.74 km/s, h=71.3 km, alpha=40 deg) on the equivalent axisymmetric
// body. The equilibrium-air and gamma=1.2 ideal-gas PNS marches run as one
// concurrent SolveBatch; synthetic flight data come from a partially
// catalytic wall.
func (s *Session) Fig6WindwardHeating(ctx context.Context) (*Fig6Result, error) {
	earth := atmosphere.NewEarth()
	st := earth.AtAltitude(71.3e3)
	o := geometry.NewOrbiter()
	body := o.EquivalentAxisymmetric(40 * math.Pi / 180)
	nSt := 22
	twall := 1100.0

	base := Problem{
		Class: PNS, Body: body,
		PInf: st.Pressure, TInf: st.Temperature, VInf: 6740,
		TWall: twall, NStations: nSt,
	}
	pE, pI := base, base
	pE.Chemistry = EquilibriumAir
	pI.Chemistry = IdealGas
	pI.Gamma = 1.2
	results, err := s.SolveBatch(ctx, []Problem{pE, pI})
	if err != nil {
		return nil, err
	}
	for _, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("%s march: %w", r.Problem.Chemistry, r.Err)
		}
	}
	resE, resI := results[0].Env.Surface, results[1].Env.Surface

	out := &Fig6Result{}
	// Map arc length on the equivalent body to x/L on the Orbiter.
	for i := range resE {
		out.XOverL = append(out.XOverL, resE[i].S/o.Length)
		out.QEquilibrium = append(out.QEquilibrium, resE[i].Q/1e4)
		out.QIdeal = append(out.QIdeal, resI[i].Q/1e4)
	}
	// Synthetic flight data: the catalytic-efficiency story. Scale the
	// equilibrium prediction by the finite-catalycity stagnation ratio and
	// add a deterministic pseudo-measurement scatter.
	mod, err := s.stack.Models(EquilibriumAir)
	if err != nil {
		return nil, err
	}
	m, eq, tr, y0 := mod.Mix, mod.Eq, mod.Tr, mod.Y0
	fs := blayer.FreeStream{P: st.Pressure, T: st.Temperature, Rho: st.Density, V: 6740}
	in, err := blayer.StagnationFromFreestream(eq, y0, fs, twall, body.NoseRadius())
	if err != nil {
		return nil, err
	}
	full, err := blayer.SolveStagnation(m, tr, in.Edge, twall, fs.P, body.NoseRadius(),
		blayer.SimilarityOptions{GammaW: 1})
	if err != nil {
		return nil, err
	}
	finite, err := blayer.SolveStagnation(m, tr, in.Edge, twall, fs.P, body.NoseRadius(),
		blayer.SimilarityOptions{GammaW: 0.01})
	if err != nil {
		return nil, err
	}
	frac := finite.QWall / full.QWall
	out.CatalysisFraction = frac
	for i := 1; i < len(resE); i += 3 {
		noise := 1 + 0.08*math.Sin(7.3*float64(i))
		out.FlightX = append(out.FlightX, resE[i].S/o.Length)
		out.FlightQ = append(out.FlightQ, resE[i].Q/1e4*frac*noise)
	}
	return out, nil
}

// Fig6WindwardHeating regenerates the paper's Fig. 6 on the shared default
// session.
func Fig6WindwardHeating() (*Fig6Result, error) {
	return defaultSession().Fig6WindwardHeating(context.Background())
}

// --- Fig. 7: two-temperature shock relaxation ---

// Fig7Result holds the relaxation-zone structure.
type Fig7Result struct {
	X       []float64 // m behind the shock
	T, Tv   []float64 // K
	XN2, XN []float64 // mole fractions
	XE      []float64 // electron mole fraction
	TFrozen float64   // frozen post-shock temperature
	TEq     float64   // relaxed equilibrium temperature
}

// Fig7ShockRelaxation regenerates the paper's Fig. 7: a 10 km/s shock into
// 0.1 torr air with two-temperature dissociating/ionizing relaxation.
func Fig7ShockRelaxation() (*Fig7Result, error) {
	m := thermo.NewMixture(thermo.AirSpecies11())
	mech, err := chem.AirMechanism(m)
	if err != nil {
		return nil, err
	}
	prob := shocktube.Problem{
		Mix: m, Mech: mech,
		P1: 13.0, T1: 300, U1: 10000,
		Y1:   thermo.AirFreestreamMassFractions(m.Species),
		XEnd: 0.05, NOut: 90,
	}
	prof, err := shocktube.Solve(prob)
	if err != nil {
		return nil, err
	}
	out := &Fig7Result{TFrozen: prof.T[0]}
	for i := range prof.X {
		out.X = append(out.X, prof.X[i])
		out.T = append(out.T, prof.T[i])
		out.Tv = append(out.Tv, prof.Tv[i])
		x := m.MoleFractions(prof.Y[i])
		out.XN2 = append(out.XN2, x[thermo.AirN2])
		out.XN = append(out.XN, x[thermo.AirN])
		out.XE = append(out.XE, x[thermo.AirE])
	}
	eq := chem.NewEquilibriumSolver(m)
	Teq, _, err := shocktube.EquilibriumTail(eq, prob)
	if err == nil {
		out.TEq = Teq
	}
	return out, nil
}

// --- Fig. 8: nonequilibrium spectra ---

// Fig8Result holds the computed vs "measured" spectral comparison.
type Fig8Result struct {
	LambdaNm []float64
	Computed []float64 // wall-directed spectral intensity, W/(m^2 sr m)
	Measured []float64 // synthetic reference (perturbed physics + noise)
}

// Fig8NoneqSpectra regenerates the paper's Fig. 8: the spectral emission of
// the Fig. 7 relaxation zone through a tangent slab, compared against a
// synthetic measurement.
func Fig8NoneqSpectra() (*Fig8Result, error) {
	m := thermo.NewMixture(thermo.AirSpecies11())
	mech, err := chem.AirMechanism(m)
	if err != nil {
		return nil, err
	}
	prob := shocktube.Problem{
		Mix: m, Mech: mech,
		P1: 13.0, T1: 300, U1: 10000,
		Y1:   thermo.AirFreestreamMassFractions(m.Species),
		XEnd: 0.03, NOut: 50,
	}
	prof, err := shocktube.Solve(prob)
	if err != nil {
		return nil, err
	}
	md := radiation.NewAirModel(m, 480)
	var layers []radiation.Layer
	for i := 1; i < len(prof.X); i++ {
		layers = append(layers, radiation.Layer{
			Thickness: prof.X[i] - prof.X[i-1],
			T:         0.5 * (prof.T[i] + prof.T[i-1]),
			Tex:       0.5 * (prof.Tv[i] + prof.Tv[i-1]),
			N:         m.NumberDensities(prof.Rho[i], prof.Y[i]),
		})
	}
	res := md.SolveSlab(layers)
	out := &Fig8Result{LambdaNm: res.LambdaNm, Computed: res.WallSpectrumI}
	// Synthetic measurement: band strengths off by up to 25% plus noise,
	// deterministic so the comparison is reproducible.
	out.Measured = make([]float64, len(res.WallSpectrumI))
	for i, v := range res.WallSpectrumI {
		l := res.LambdaNm[i]
		bandPerturb := 1 + 0.25*math.Sin(l/60)
		noise := 1 + 0.1*math.Sin(13.7*l)
		out.Measured[i] = v * bandPerturb * noise
	}
	return out, nil
}

// --- Fig. 9: hemisphere NS N2 contours ---

// Fig9Result holds the N2 mole-fraction field summary.
type Fig9Result struct {
	ContourX map[float64]float64 // stagnation-line x of each contour level
	MinXN2   float64             // strongest dissociation in the field
	QStag    float64             // stagnation heat flux, W/m^2
	Standoff float64
}

// Fig9HemisphereNS regenerates the paper's Fig. 9 — Mach-20 equilibrium air
// over a hemisphere at 20 km altitude — through the session NS solver, so
// repeated runs reuse the cached equilibrium EOS table; the N2 contour
// field comes from the solver payload on Environment.Raw.
func (s *Session) Fig9HemisphereNS(ctx context.Context, q Quality) (*Fig9Result, error) {
	earth := atmosphere.NewEarth()
	st := earth.AtAltitude(20e3)
	eqm := s.stack.EquilibriumAirGas()
	mu, k, err := ns.EquilibriumTransport(eqm, transport.NewMixture(eqm.Mix), 0.3)
	if err != nil {
		return nil, err
	}
	ni, nj, steps := 14, 26, 3000
	if q >= 2 {
		ni, nj, steps = 24, 40, 6000
	}
	aInf := math.Sqrt(thermo.GammaAir * thermo.RAir * st.Temperature)
	env, err := s.Solve(ctx, Problem{
		Class: NS, Chemistry: EquilibriumAir,
		PInf: st.Pressure, TInf: st.Temperature, VInf: 20 * aInf,
		NoseRadius: 0.3, TWall: 1500,
		NI: ni, NJ: nj, MaxSteps: steps,
		Mu: mu, K: k,
	})
	if err != nil {
		return nil, err
	}
	r, ok := env.Raw.(*ns.Result)
	if !ok {
		return nil, fmt.Errorf("cataero: NS solver returned no field payload")
	}
	y0 := thermo.AirFreestreamMassFractions(eqm.Mix.Species)
	levels := []float64{0.5, 0.55, 0.6, 0.65, 0.7, 0.75}
	cross, err := r.ContourCrossings(eqm.Eq, y0, levels)
	if err != nil {
		return nil, err
	}
	_, _, xn2, err := r.N2Field(eqm.Eq, y0)
	if err != nil {
		return nil, err
	}
	minX := 1.0
	for _, v := range xn2 {
		if v < minX {
			minX = v
		}
	}
	return &Fig9Result{
		ContourX: cross,
		MinXN2:   minX,
		QStag:    env.QConvStag,
		Standoff: env.Standoff,
	}, nil
}

// Fig9HemisphereNS regenerates the paper's Fig. 9 on the shared default
// session.
func Fig9HemisphereNS(q Quality) (*Fig9Result, error) {
	return defaultSession().Fig9HemisphereNS(context.Background(), q)
}
