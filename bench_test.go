package cataero

// The benchmark harness regenerates every figure of the paper's evaluation
// (Figs. 1-9) and asserts its qualitative shape: who wins, by roughly what
// factor, and where the crossovers fall. Absolute numbers come from our
// simulated substrate (synthetic atmospheres, RRHO constants), so the
// shape — not the digit — is the reproduction target; EXPERIMENTS.md records
// paper-vs-measured for each.

import (
	"context"
	"math"
	"testing"
)

// BenchmarkFig1FlightDomain: Re-M map of vehicles vs facility envelopes.
func BenchmarkFig1FlightDomain(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		r := Fig1FlightDomain()
		gap = r.GapFraction
		if len(r.Vehicles) < 4 {
			b.Fatal("missing vehicle series")
		}
	}
	b.ReportMetric(gap, "AOTV-gap-fraction")
}

// BenchmarkFig2TitanHeatingPulse: convective & radiative stagnation pulses.
func BenchmarkFig2TitanHeatingPulse(b *testing.B) {
	var peakC, peakR, tC, tR float64
	for i := 0; i < b.N; i++ {
		r, err := Fig2TitanHeatingPulse()
		if err != nil {
			b.Fatal(err)
		}
		peakC, peakR = r.PeakConv, r.PeakRad
		tC, tR = r.TPeakConv, r.TPeakRad
		if peakC <= 0 || peakR <= 0 {
			b.Fatal("missing heating pulse")
		}
	}
	b.ReportMetric(peakC, "peak-qconv-W/cm2")
	b.ReportMetric(peakR, "peak-qrad-W/cm2")
	b.ReportMetric(tR-tC, "rad-peak-lead-s")
	_ = tC
}

// BenchmarkFig3TitanSpeciesProfile: stagnation-line equilibrium composition.
func BenchmarkFig3TitanSpeciesProfile(b *testing.B) {
	var delta float64
	for i := 0; i < b.N; i++ {
		r, err := Fig3TitanSpeciesProfile()
		if err != nil {
			b.Fatal(err)
		}
		delta = r.Delta
		// Fig. 3 shape: N2 dominant at the wall, still the leading molecule
		// in the hot layer; CN and H grow toward the shock.
		n2 := r.Species["N2"]
		cn := r.Species["CN"]
		h := r.Species["H"]
		last := len(n2) - 1
		if n2[0] < 0.8 {
			b.Fatalf("N2 not dominant at the wall: %g", n2[0])
		}
		if n2[last] < 0.2 {
			b.Fatalf("N2 overly dissociated at the shock: %g", n2[last])
		}
		if cn[last] <= cn[0] || h[last] <= h[0] {
			b.Fatal("CN and H should grow toward the shock")
		}
	}
	b.ReportMetric(delta*100, "standoff-cm")
}

// BenchmarkFig4OrbiterShockShape: reacting vs ideal pitch-plane shock.
func BenchmarkFig4OrbiterShockShape(b *testing.B) {
	var dI, dE float64
	for i := 0; i < b.N; i++ {
		r, err := Fig4OrbiterShockShape(1)
		if err != nil {
			b.Fatal(err)
		}
		dI, dE = r.StandoffIdeal, r.StandoffReacting
		if dE >= dI {
			b.Fatalf("reacting shock (%.3g m) must lie closer than ideal (%.3g m)", dE, dI)
		}
	}
	b.ReportMetric(dI, "standoff-ideal-m")
	b.ReportMetric(dE, "standoff-reacting-m")
	b.ReportMetric(dE/dI, "reacting/ideal")
}

// BenchmarkFig5OrbiterGeometry: geometry discretization.
func BenchmarkFig5OrbiterGeometry(b *testing.B) {
	var span float64
	for i := 0; i < b.N; i++ {
		secs := Fig5OrbiterGeometry(40)
		if len(secs) != 40 {
			b.Fatal("bad section count")
		}
		span = 2 * secs[len(secs)-1].HalfWidth
	}
	b.ReportMetric(span, "span-m")
}

// BenchmarkFig6WindwardHeating: equilibrium vs gamma=1.2 vs flight data.
func BenchmarkFig6WindwardHeating(b *testing.B) {
	var frac float64
	for i := 0; i < b.N; i++ {
		r, err := Fig6WindwardHeating()
		if err != nil {
			b.Fatal(err)
		}
		frac = r.CatalysisFraction
		// Fig. 6 shape: heating decays aft; flight data fall below the
		// fully catalytic equilibrium prediction.
		last := len(r.QEquilibrium) - 1
		if r.QEquilibrium[last] >= r.QEquilibrium[0] {
			b.Fatal("equilibrium heating should decay along the body")
		}
		for j := range r.FlightQ {
			if r.FlightQ[j] >= r.QEquilibrium[0]*1.05 {
				b.Fatalf("flight point %d above fully catalytic stagnation level", j)
			}
		}
		if frac >= 1 {
			b.Fatalf("catalysis fraction %g must be below 1", frac)
		}
	}
	b.ReportMetric(frac, "flight/fully-catalytic")
}

// BenchmarkFig7ShockRelaxation: two-temperature relaxation structure.
func BenchmarkFig7ShockRelaxation(b *testing.B) {
	var tFrozen, tEq float64
	for i := 0; i < b.N; i++ {
		r, err := Fig7ShockRelaxation()
		if err != nil {
			b.Fatal(err)
		}
		tFrozen, tEq = r.TFrozen, r.TEq
		// Fig. 7 shape: Tv lags T; both relax toward the equilibrium value;
		// N2 dissociates and electrons appear.
		last := len(r.X) - 1
		if !(r.Tv[0] < r.T[0]/5) {
			b.Fatal("Tv should start cold")
		}
		if math.Abs(r.T[last]-r.Tv[last]) > 0.25*r.T[last] {
			b.Fatal("T and Tv failed to merge")
		}
		if r.XN2[last] >= r.XN2[0] {
			b.Fatal("N2 should dissociate")
		}
		if r.XE[last] <= 0 {
			b.Fatal("ionization missing")
		}
	}
	b.ReportMetric(tFrozen, "T-frozen-K")
	b.ReportMetric(tEq, "T-equilibrium-K")
}

// BenchmarkFig8NoneqSpectra: computed vs measured spectral comparison.
func BenchmarkFig8NoneqSpectra(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		r, err := Fig8NoneqSpectra()
		if err != nil {
			b.Fatal(err)
		}
		// Band-by-band agreement: integrated computed vs measured intensity
		// within the perturbation envelope (the Fig. 8 "good comparison").
		ic, im := 0.0, 0.0
		for j := 1; j < len(r.LambdaNm); j++ {
			dl := r.LambdaNm[j] - r.LambdaNm[j-1]
			ic += 0.5 * (r.Computed[j] + r.Computed[j-1]) * dl
			im += 0.5 * (r.Measured[j] + r.Measured[j-1]) * dl
		}
		if ic <= 0 || im <= 0 {
			b.Fatal("empty spectra")
		}
		ratio = ic / im
		if ratio < 0.6 || ratio > 1.7 {
			b.Fatalf("computed/measured integral ratio %g outside band", ratio)
		}
	}
	b.ReportMetric(ratio, "computed/measured")
}

// BenchmarkFig9HemisphereNS: N2 mole-fraction contours, Mach 20, 20 km.
func BenchmarkFig9HemisphereNS(b *testing.B) {
	var minX float64
	for i := 0; i < b.N; i++ {
		r, err := Fig9HemisphereNS(1)
		if err != nil {
			b.Fatal(err)
		}
		minX = r.MinXN2
		// Fig. 9 contour range: levels 0.50-0.79; the shock layer must
		// dissociate into that band and the 0.75 contour must exist.
		if _, ok := r.ContourX[0.75]; !ok {
			b.Fatal("0.75 contour missing on the stagnation line")
		}
		if minX > 0.76 || minX < 0.2 {
			b.Fatalf("min x(N2) = %g outside the Fig. 9 band", minX)
		}
		if r.QStag <= 0 || r.Standoff <= 0 {
			b.Fatal("missing NS outputs")
		}
	}
	b.ReportMetric(minX, "min-xN2")
}

// --- Ablation benches (design choices called out in DESIGN.md) ---

// BenchmarkAblationEquilibriumTableVsExact: table lookup vs exact Gibbs
// solve in the (rho,e) -> (p,T,a) hot path.
func BenchmarkAblationEquilibriumTableVsExact(b *testing.B) {
	exact := newEquilibriumForBench()
	tab, err := newTableForBench(exact)
	if err != nil {
		b.Fatal(err)
	}
	rho, e := 0.01, 8e6
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, _, err := exact.PrimState(rho, e); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("table", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, _, err := tab.PrimState(rho, e); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationOneVsTwoTemperature: relaxation-zone length with and
// without the two-temperature model (TaGeom vs T-only dissociation rates).
func BenchmarkAblationOneVsTwoTemperature(b *testing.B) {
	for i := 0; i < b.N; i++ {
		oneT, twoT, err := relaxationLengthComparison()
		if err != nil {
			b.Fatal(err)
		}
		// The two-temperature model delays dissociation (sqrt(T*Tv) is
		// initially far below T), lengthening the relaxation zone.
		if twoT <= oneT {
			b.Fatalf("two-temperature zone (%g m) should exceed one-T (%g m)", twoT, oneT)
		}
		b.ReportMetric(twoT/oneT, "2T/1T-length")
	}
}

// BenchmarkAblationCatalyticWallSweep: heating vs recombination coefficient.
func BenchmarkAblationCatalyticWallSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		qs, err := catalyticSweep([]float64{0, 0.005, 0.05, 1})
		if err != nil {
			b.Fatal(err)
		}
		for j := 1; j < len(qs); j++ {
			if qs[j] < qs[j-1] {
				b.Fatalf("heating must rise with catalycity: %v", qs)
			}
		}
		b.ReportMetric(qs[0]/qs[len(qs)-1], "noncat/fullycat")
	}
}

// BenchmarkAblationMUSCLShockCrispness: first-order vs MUSCL shock width.
func BenchmarkAblationMUSCLShockCrispness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w1, w2, err := shockWidthComparison()
		if err != nil {
			b.Fatal(err)
		}
		if w2 > w1*1.05 {
			b.Fatalf("MUSCL shock width %g should not exceed first-order %g", w2, w1)
		}
		b.ReportMetric(w2/w1, "muscl/firstorder-width")
	}
}

// BenchmarkAblationThinVsTangentSlab: optically thin limit vs full
// tangent-slab transport for the Titan shock layer.
func BenchmarkAblationThinVsTangentSlab(b *testing.B) {
	for i := 0; i < b.N; i++ {
		thin, slab, err := radiationLimitComparison()
		if err != nil {
			b.Fatal(err)
		}
		if slab > thin*1.01 {
			b.Fatalf("transport (%g) cannot exceed the thin limit (%g)", slab, thin)
		}
		b.ReportMetric(slab/thin, "slab/thin")
	}
}

// --- Session API benches ---

// BenchmarkColdSolve: a repeated NS stagnation solve through a fresh
// session every iteration — the legacy one-shot cost, paying the model
// stack and EOS-table build each time.
func BenchmarkColdSolve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env, err := NewSession().Solve(context.Background(), smallNSProblem())
		if err != nil {
			b.Fatal(err)
		}
		if env.QConvStag <= 0 {
			b.Fatal("no NS wall heating")
		}
	}
}

// BenchmarkSessionReuse: the same NS stagnation solve through one reused
// session — the cached-stack path; the EOS table builds exactly once.
func BenchmarkSessionReuse(b *testing.B) {
	s := NewSession()
	// Warm the caches so the loop measures steady-state reuse.
	if _, err := s.Solve(context.Background(), smallNSProblem()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env, err := s.Solve(context.Background(), smallNSProblem())
		if err != nil {
			b.Fatal(err)
		}
		if env.QConvStag <= 0 {
			b.Fatal("no NS wall heating")
		}
	}
	if builds := s.stack.TableBuilds(); builds != 1 {
		b.Fatalf("EOS table built %d times across the bench, want 1", builds)
	}
}
